// Package wal implements the durability subsystem: a checksummed,
// length-prefixed write-ahead log of database mutations, periodic
// compacted snapshots, and recovery-on-open that replays the log
// suffix past the latest valid snapshot.
//
// The contract is the one a crash demands: every mutation is framed,
// checksummed and fsynced before the in-memory generation that carries
// it is published, so a `kill -9` at any instant loses at most the
// mutation that had not yet returned to its caller. On reopen the
// store recovers to exactly the last durable generation — a torn tail
// (the unfinished final append a crash leaves behind) is detected and
// dropped — or, if the log or a snapshot fails validation anywhere
// else, it refuses to open with an error matching ErrCorrupt. There is
// no third outcome: recovered state is never guessed at.
//
// # Record format
//
// A log segment is a sequence of frames:
//
//	frame   := length uint32 BE | crc uint32 BE | payload
//	payload := type byte | seq uint64 BE | body
//
// crc is CRC-32C (Castagnoli) over the payload. seq is the database
// generation the record produces; generations increase by exactly one
// per mutation, which recovery and fsck verify. Two record types
// exist: an Exec record carries program source text (rules, pragmas
// and parser-loaded facts — the text round-trips through the parser),
// and a Facts record carries one bulk LoadFacts batch in the
// dictionary-delta encoding below.
//
// # Dictionary-delta fact encoding
//
// Fact tuples are serialized via fixed-width term IDs, mirroring the
// in-memory storage layer (internal/relation keys tuples on packed
// 8-byte dictionary codes; internal/term assigns them). Each segment
// and each snapshot carries its own append-only term dictionary:
// the first record that stores a given non-small-integer ground term
// includes the term's binary encoding (term.AppendEncode) as a
// dictionary delta, implicitly assigning the next dense file-local ID;
// every row is then a fixed-width vector of 8-byte words:
//
//	bit 63 set   → file-local dictionary reference (lower 63 bits)
//	bit 63 clear → a small-integer term.ID, self-describing (tag 000)
//
// Small integers need no dictionary entry on disk for the same reason
// they need none in memory. A reference to a file ID no dictionary
// delta has defined is a dangling interned-term ID — corruption that
// both recovery and fsck reject.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"chainsplit/internal/relation"
	"chainsplit/internal/term"
)

// ErrCorrupt matches (errors.Is) every failure caused by invalid
// durable state: checksum mismatches, truncated or duplicated records,
// dangling term IDs, non-monotonic generations, unparseable replayed
// sources. A store that cannot recover to a consistent generation
// refuses to open with an error matching this sentinel.
var ErrCorrupt = errors.New("durable store is corrupt")

// corruptf wraps ErrCorrupt with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// RecordType discriminates log records.
type RecordType byte

const (
	// RecExec is a program load: body is source text.
	RecExec RecordType = 1
	// RecFacts is a bulk fact batch: body is the dictionary-delta
	// encoding of (pred, arity, tuples).
	RecFacts RecordType = 2
)

// Record is one durable mutation.
type Record struct {
	// Seq is the generation this mutation produces.
	Seq  uint64
	Type RecordType
	// Src is the program source text (RecExec).
	Src string
	// Pred, Tuples carry the batch (RecFacts).
	Pred   string
	Tuples []relation.Tuple
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderLen is the fixed frame prefix: length + crc.
const frameHeaderLen = 8

// payloadHeaderLen is type byte + seq.
const payloadHeaderLen = 9

// maxRecordLen bounds one payload (256 MiB); longer claims are
// corruption, not data.
const maxRecordLen = 1 << 28

// Frame wraps a payload in the on-disk frame: length, CRC-32C,
// payload. Exported so integrity tools and tests can construct valid
// frames around hand-built payloads.
func Frame(payload []byte) []byte {
	out := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:8], crc32.Checksum(payload, castagnoli))
	copy(out[frameHeaderLen:], payload)
	return out
}

// fileRefBit marks a row word as a file-local dictionary reference.
const fileRefBit = uint64(1) << 63

// segDict is the per-segment (or per-snapshot) term dictionary: dense
// file-local IDs for every non-small-integer term written since the
// segment started.
type segDict struct {
	ids  map[term.ID]uint64 // process-wide ID → file-local ID
	next uint64
}

func newSegDict() *segDict {
	return &segDict{ids: make(map[term.ID]uint64)}
}

// encodeTuples appends the dictionary-delta encoding of a batch to
// body: new dictionary entries first, then fixed-width rows. It
// advances d. The row words are derived from the same packed process-
// wide ID encoding the relation layer keys storage on
// (relation.AppendIDKey), translated word-by-word into the stable
// on-disk namespace.
func encodeTuples(body []byte, d *segDict, tuples []relation.Tuple) ([]byte, error) {
	// First pass: find terms new to this segment, in first-use order.
	var newTerms []term.Term
	var rowBuf []byte
	rows := make([][]uint64, len(tuples))
	for ti, tup := range tuples {
		var ok bool
		rowBuf, ok = relation.AppendIDKey(rowBuf[:0], tup)
		if !ok {
			return body, fmt.Errorf("wal: non-ground tuple %v", tup)
		}
		words := make([]uint64, len(tup))
		for i := range tup {
			pid := term.ID(binary.BigEndian.Uint64(rowBuf[8*i:]))
			if _, small := pid.SmallInt(); small {
				words[i] = uint64(pid)
				continue
			}
			fid, seen := d.ids[pid]
			if !seen {
				fid = d.next
				d.next++
				d.ids[pid] = fid
				newTerms = append(newTerms, tup[i])
			}
			words[i] = fileRefBit | fid
		}
		rows[ti] = words
	}
	body = binary.AppendUvarint(body, uint64(len(newTerms)))
	var enc []byte
	for _, t := range newTerms {
		var err error
		enc, err = term.AppendEncode(enc[:0], t)
		if err != nil {
			return body, fmt.Errorf("wal: %v", err)
		}
		body = binary.AppendUvarint(body, uint64(len(enc)))
		body = append(body, enc...)
	}
	body = binary.AppendUvarint(body, uint64(len(rows)))
	for _, words := range rows {
		for _, w := range words {
			body = binary.BigEndian.AppendUint64(body, w)
		}
	}
	return body, nil
}

// readDict is the decoding side: file-local ID → term, grown as
// dictionary deltas are scanned.
type readDict struct {
	terms []term.Term
}

// addDeltas decodes a record's dictionary-delta section, extending rd.
func (rd *readDict) addDeltas(body []byte) ([]byte, error) {
	n, body, err := readUvarint(body, "dictionary delta count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		var encLen uint64
		encLen, body, err = readUvarint(body, "dictionary entry length")
		if err != nil {
			return nil, err
		}
		if encLen > uint64(len(body)) {
			return nil, corruptf("dictionary entry length %d exceeds %d remaining bytes", encLen, len(body))
		}
		t, rest, derr := term.Decode(body[:encLen])
		if derr != nil {
			return nil, corruptf("dictionary entry %d: %v", len(rd.terms), derr)
		}
		if len(rest) != 0 {
			return nil, corruptf("dictionary entry %d: %d trailing bytes", len(rd.terms), len(rest))
		}
		rd.terms = append(rd.terms, t)
		body = body[encLen:]
	}
	return body, nil
}

// resolve translates one row word into a term.
func (rd *readDict) resolve(w uint64) (term.Term, error) {
	if w&fileRefBit != 0 {
		fid := w &^ fileRefBit
		if fid >= uint64(len(rd.terms)) {
			return nil, corruptf("dangling interned-term ID %d (dictionary has %d entries)", fid, len(rd.terms))
		}
		return rd.terms[fid], nil
	}
	if v, ok := term.ID(w).SmallInt(); ok {
		return term.NewInt(v), nil
	}
	return nil, corruptf("row word %#x is neither a file reference nor a small integer", w)
}

func readUvarint(b []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, corruptf("truncated %s", what)
	}
	return v, b[n:], nil
}

// encodeRecord renders a record's payload (type | seq | body),
// advancing the segment dictionary for fact batches.
func encodeRecord(r Record, d *segDict) ([]byte, error) {
	payload := make([]byte, 0, payloadHeaderLen+len(r.Src))
	payload = append(payload, byte(r.Type))
	payload = binary.BigEndian.AppendUint64(payload, r.Seq)
	switch r.Type {
	case RecExec:
		payload = append(payload, r.Src...)
	case RecFacts:
		if r.Pred == "" || len(r.Tuples) == 0 {
			return nil, fmt.Errorf("wal: facts record needs a predicate and tuples")
		}
		payload = binary.AppendUvarint(payload, uint64(len(r.Pred)))
		payload = append(payload, r.Pred...)
		payload = binary.AppendUvarint(payload, uint64(len(r.Tuples[0])))
		var err error
		payload, err = encodeTuples(payload, d, r.Tuples)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
	return payload, nil
}

// decodeRecord parses a payload produced by encodeRecord, resolving
// fact rows through (and extending) the segment read dictionary.
func decodeRecord(payload []byte, rd *readDict) (Record, error) {
	if len(payload) < payloadHeaderLen {
		return Record{}, corruptf("record payload of %d bytes is shorter than the %d-byte header", len(payload), payloadHeaderLen)
	}
	r := Record{
		Type: RecordType(payload[0]),
		Seq:  binary.BigEndian.Uint64(payload[1:9]),
	}
	body := payload[payloadHeaderLen:]
	switch r.Type {
	case RecExec:
		r.Src = string(body)
		return r, nil
	case RecFacts:
		predLen, body, err := readUvarint(body, "predicate length")
		if err != nil {
			return Record{}, err
		}
		if predLen == 0 || predLen > uint64(len(body)) {
			return Record{}, corruptf("predicate length %d invalid for %d remaining bytes", predLen, len(body))
		}
		r.Pred = string(body[:predLen])
		body = body[predLen:]
		arity, body, err := readUvarint(body, "arity")
		if err != nil {
			return Record{}, err
		}
		if arity == 0 || arity > maxRecordLen/8 {
			return Record{}, corruptf("arity %d out of range", arity)
		}
		body, err = rd.addDeltas(body)
		if err != nil {
			return Record{}, err
		}
		rowCount, body, err := readUvarint(body, "row count")
		if err != nil {
			return Record{}, err
		}
		if rowCount*arity*8 != uint64(len(body)) {
			return Record{}, corruptf("facts record claims %d rows × %d columns but has %d row bytes", rowCount, arity, len(body))
		}
		r.Tuples = make([]relation.Tuple, rowCount)
		for i := uint64(0); i < rowCount; i++ {
			tup := make(relation.Tuple, arity)
			for c := uint64(0); c < arity; c++ {
				w := binary.BigEndian.Uint64(body[(i*arity+c)*8:])
				t, err := rd.resolve(w)
				if err != nil {
					return Record{}, err
				}
				tup[c] = t
			}
			r.Tuples[i] = tup
		}
		return r, nil
	default:
		return Record{}, corruptf("unknown record type %d", r.Type)
	}
}

// scanResult is one segment's parse: the decoded records, the byte
// offset where valid data ends, and whether the bytes past validEnd
// are a torn tail (an unfinished final append — recoverable by
// truncation) as opposed to mid-log corruption.
type scanResult struct {
	records  []Record
	dict     *readDict
	validEnd int64
	torn     bool
}

// scanSegment parses one segment image. A frame that extends past the
// end of the data, or a zero-filled header followed only by zeros, is
// a torn tail; a checksum mismatch or undecodable body anywhere is
// corruption.
func scanSegment(data []byte) (*scanResult, error) {
	res := &scanResult{dict: &readDict{}}
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			res.validEnd = off
			return res, nil
		}
		if len(rest) < frameHeaderLen {
			res.validEnd, res.torn = off, true
			return res, nil
		}
		length := binary.BigEndian.Uint32(rest[0:4])
		crc := binary.BigEndian.Uint32(rest[4:8])
		if length == 0 && crc == 0 {
			// Zero-filled tail: some filesystems surface a crash as
			// zeros past the last durable write. Anything non-zero in
			// it is corruption, not a torn append.
			for _, b := range rest {
				if b != 0 {
					return nil, corruptf("zero-length frame at offset %d followed by non-zero data", off)
				}
			}
			res.validEnd, res.torn = off, true
			return res, nil
		}
		if length > maxRecordLen {
			return nil, corruptf("frame at offset %d claims %d bytes (max %d)", off, length, maxRecordLen)
		}
		if uint64(len(rest)-frameHeaderLen) < uint64(length) {
			// The frame runs past the end of the file: the append was
			// torn mid-write.
			res.validEnd, res.torn = off, true
			return res, nil
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int(length)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return nil, corruptf("checksum mismatch in frame at offset %d", off)
		}
		rec, err := decodeRecord(payload, res.dict)
		if err != nil {
			return nil, err
		}
		res.records = append(res.records, rec)
		off += int64(frameHeaderLen + int(length))
	}
}
