package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chainsplit/internal/faultinject"
	"chainsplit/internal/relation"
	"chainsplit/internal/term"
)

func tup(ts ...term.Term) relation.Tuple { return relation.Tuple(ts) }

func execRec(seq uint64, src string) Record {
	return Record{Seq: seq, Type: RecExec, Src: src}
}

func factsRec(seq uint64, pred string, tuples ...relation.Tuple) Record {
	return Record{Seq: seq, Type: RecFacts, Pred: pred, Tuples: tuples}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rec
}

func sameTuples(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for c := range a[i] {
			if !term.Equal(a[i][c], b[i][c]) {
				return false
			}
		}
	}
	return true
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := mustOpen(t, dir, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh store recovered state: %+v", rec)
	}
	batch := []relation.Tuple{
		tup(term.NewSym("a"), term.NewInt(1)),
		tup(term.NewStr("hello"), term.NewComp("f", term.NewInt(2), term.NewSym("x"))),
		tup(term.NewSym("a"), term.NewInt(-7)),
	}
	if err := s.Append(execRec(1, "p(X) :- e(X).\ne(1).\n")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(factsRec(2, "edge", batch...)); err != nil {
		t.Fatal(err)
	}
	// Second batch reusing terms: dictionary deltas must not repeat.
	if err := s.Append(factsRec(3, "edge", tup(term.NewSym("a"), term.NewInt(1)))); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if rec2.Snapshot != nil {
		t.Fatal("unexpected snapshot")
	}
	if len(rec2.Records) != 3 || rec2.LastSeq != 3 {
		t.Fatalf("recovered %d records, LastSeq %d", len(rec2.Records), rec2.LastSeq)
	}
	if rec2.Records[0].Type != RecExec || rec2.Records[0].Src != "p(X) :- e(X).\ne(1).\n" {
		t.Fatalf("exec record mangled: %+v", rec2.Records[0])
	}
	if rec2.Records[1].Pred != "edge" || !sameTuples(rec2.Records[1].Tuples, batch) {
		t.Fatalf("facts record mangled: %+v", rec2.Records[1])
	}
	// Appends must continue seamlessly after recovery.
	if err := s2.Append(factsRec(4, "edge", tup(term.NewSym("a"), term.NewInt(1)))); err != nil {
		t.Fatal(err)
	}
}

func TestSeqDiscipline(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Append(execRec(5, "x.")); err == nil {
		t.Fatal("append with wrong seq succeeded")
	}
	if err := s.Append(execRec(1, "x(1).")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(execRec(1, "x(2).")); err == nil {
		t.Fatal("duplicate seq append succeeded")
	}
}

func TestSnapshotCompactionAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{SnapshotEvery: -1})
	for i := uint64(1); i <= 3; i++ {
		if err := s.Append(factsRec(i, "edge", tup(term.NewInt(int64(i)), term.NewSym("n")))); err != nil {
			t.Fatal(err)
		}
	}
	snap := &Snapshot{
		Seq:   3,
		Rules: "p(X) :- edge(X, _).\n",
		Facts: []FactRow{
			{Pred: "edge", Tuple: tup(term.NewInt(1), term.NewSym("n"))},
			{Pred: "edge", Tuple: tup(term.NewInt(2), term.NewSym("n"))},
			{Pred: "edge", Tuple: tup(term.NewInt(3), term.NewSym("n"))},
		},
	}
	if err := s.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	// One more record after the snapshot.
	if err := s.Append(factsRec(4, "edge", tup(term.NewInt(4), term.NewSym("n")))); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Compaction pruned the pre-snapshot segment.
	if _, err := os.Stat(filepath.Join(dir, segName(0))); !os.IsNotExist(err) {
		t.Fatalf("pre-snapshot segment survived pruning: %v", err)
	}

	s2, rec := mustOpen(t, dir, Options{})
	defer s2.Close()
	if rec.Snapshot == nil || rec.Snapshot.Seq != 3 {
		t.Fatalf("recovered snapshot %+v", rec.Snapshot)
	}
	if rec.Snapshot.Rules != snap.Rules || len(rec.Snapshot.Facts) != 3 {
		t.Fatalf("snapshot content mangled: %+v", rec.Snapshot)
	}
	if len(rec.Records) != 1 || rec.Records[0].Seq != 4 || rec.LastSeq != 4 {
		t.Fatalf("replay suffix wrong: %+v", rec.Records)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append(execRec(1, "a(1).")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(execRec(2, "a(2).")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := filepath.Join(dir, segName(0))
	offsets, end, err := RecordOffsets(seg)
	if err != nil || len(offsets) != 2 {
		t.Fatalf("RecordOffsets: %v %v", offsets, err)
	}
	// Tear the second record: keep a few bytes past its frame start.
	if err := os.Truncate(seg, offsets[1]+3); err != nil {
		t.Fatal(err)
	}
	_ = end

	s2, rec := mustOpen(t, dir, Options{})
	if !rec.TornTail {
		t.Fatal("torn tail not reported")
	}
	if len(rec.Records) != 1 || rec.LastSeq != 1 {
		t.Fatalf("recovered %+v", rec.Records)
	}
	// The tail must be physically gone and appends must continue.
	if fi, _ := os.Stat(seg); fi.Size() != offsets[1] {
		t.Fatalf("torn tail not truncated: size %d, want %d", fi.Size(), offsets[1])
	}
	if err := s2.Append(execRec(2, "a(2).")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

func TestChecksumMismatchIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append(execRec(1, "a(1).")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(execRec(2, "a(2).")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := filepath.Join(dir, segName(0))
	offsets, _, _ := RecordOffsets(seg)
	data, _ := os.ReadFile(seg)
	data[offsets[0]+frameHeaderLen+2] ^= 0x40 // flip a payload bit in record 1
	os.WriteFile(seg, data, 0o644)

	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open after bit flip: %v", err)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !strings.Contains(strings.Join(rep.Problems, "\n"), "checksum") {
		t.Fatalf("fsck missed the flip: %+v", rep.Problems)
	}
}

func TestDuplicatedRecordIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append(execRec(1, "a(1).")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := filepath.Join(dir, segName(0))
	data, _ := os.ReadFile(seg)
	os.WriteFile(seg, append(data, data...), 0o644) // duplicate the record

	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open after duplication: %v", err)
	}
	rep, _ := Fsck(dir)
	if rep.OK() || !strings.Contains(strings.Join(rep.Problems, "\n"), "duplicated") {
		t.Fatalf("fsck missed the duplicate: %+v", rep.Problems)
	}
}

func TestDanglingTermIDIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append(factsRec(1, "edge", tup(term.NewSym("a"), term.NewSym("b")))); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Rewrite the record with a row word referencing a dictionary
	// entry that does not exist, re-framed with a valid checksum.
	seg := filepath.Join(dir, segName(0))
	data, _ := os.ReadFile(seg)
	payload := append([]byte(nil), data[frameHeaderLen:]...)
	// The last 8 bytes of a facts payload are the final row word.
	binary.BigEndian.PutUint64(payload[len(payload)-8:], fileRefBit|999)
	os.WriteFile(seg, Frame(payload), 0o644)

	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with dangling term ID: %v", err)
	}
	rep, _ := Fsck(dir)
	if rep.OK() || !strings.Contains(strings.Join(rep.Problems, "\n"), "dangling") {
		t.Fatalf("fsck missed the dangling ID: %+v", rep.Problems)
	}
}

func TestNonMonotonicGenerationIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append(execRec(1, "a(1).")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(execRec(2, "a(2).")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Rewrite the second record claiming generation 7: a gap.
	seg := filepath.Join(dir, segName(0))
	offsets, _, _ := RecordOffsets(seg)
	data, _ := os.ReadFile(seg)
	payload := append([]byte(nil), data[offsets[1]+frameHeaderLen:]...)
	binary.BigEndian.PutUint64(payload[1:9], 7)
	os.WriteFile(seg, append(data[:offsets[1]], Frame(payload)...), 0o644)

	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with generation gap: %v", err)
	}
	rep, _ := Fsck(dir)
	if rep.OK() || !strings.Contains(strings.Join(rep.Problems, "\n"), "gap") {
		t.Fatalf("fsck missed the gap: %+v", rep.Problems)
	}
}

func TestCorruptSnapshotDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append(factsRec(1, "e", tup(term.NewSym("a")))); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(&Snapshot{Seq: 1, Rules: "", Facts: []FactRow{{Pred: "e", Tuple: tup(term.NewSym("a"))}}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, snapName(1))
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x01
	os.WriteFile(path, data, 0o644)

	// The snapshot is the only state (the log was rotated empty), so
	// the store must refuse to open.
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with corrupt snapshot: %v", err)
	}
	rep, _ := Fsck(dir)
	if rep.OK() {
		t.Fatal("fsck missed the corrupt snapshot")
	}
}

func TestFsyncLieAndFailure(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	restore := faultinject.Set(faultinject.SiteWALSync, func() error { return faultinject.ErrSkipOp })
	if err := s.Append(execRec(1, "a(1).")); err != nil {
		t.Fatalf("fsync lie must report success: %v", err)
	}
	restore()
	injected := errors.New("disk on fire")
	faultinject.Set(faultinject.SiteWALSync, func() error { return injected })
	if err := s.Append(execRec(2, "a(2).")); !errors.Is(err, injected) {
		t.Fatalf("fsync failure not surfaced: %v", err)
	}
	// The store is now fail-stop.
	faultinject.Reset()
	if err := s.Append(execRec(2, "a(2).")); !errors.Is(err, injected) {
		t.Fatalf("store not fail-stop after append failure: %v", err)
	}
	s.Close()
}

func TestFsckCleanStore(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	for i := uint64(1); i <= 5; i++ {
		if err := s.Append(factsRec(i, "e", tup(term.NewInt(int64(i))))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteSnapshot(&Snapshot{Seq: 5, Rules: "p(X) :- e(X).\n", Facts: []FactRow{
		{Pred: "e", Tuple: tup(term.NewInt(1))}, {Pred: "e", Tuple: tup(term.NewInt(2))},
		{Pred: "e", Tuple: tup(term.NewInt(3))}, {Pred: "e", Tuple: tup(term.NewInt(4))},
		{Pred: "e", Tuple: tup(term.NewInt(5))},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(factsRec(6, "e", tup(term.NewInt(6)))); err != nil {
		t.Fatal(err)
	}
	s.Close()
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean store flagged: %+v", rep.Problems)
	}
	if rep.LastSeq != 6 {
		t.Fatalf("LastSeq %d, want 6", rep.LastSeq)
	}
	if !strings.Contains(rep.String(), "clean") {
		t.Fatalf("report rendering: %s", rep.String())
	}
}

// TestTornWriteInjection simulates a crash mid-append with the
// wal.append data hook: the store believes the append succeeded, but
// only a prefix of the frame reached disk. Reopening must drop the
// torn record and recover the previous generation.
func TestTornWriteInjection(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append(execRec(1, "a(1).")); err != nil {
		t.Fatal(err)
	}
	restore := faultinject.SetData(faultinject.SiteWALAppend, func(b []byte) ([]byte, error) {
		return b[:len(b)/2], nil // tear the write in half
	})
	if err := s.Append(execRec(2, "a(2).")); err != nil {
		t.Fatalf("torn append must look like success to the writer: %v", err)
	}
	restore()
	s.Close() // the "crash": nothing more reaches the file

	s2, rec := mustOpen(t, dir, Options{})
	defer s2.Close()
	if !rec.TornTail {
		t.Fatal("torn tail not detected")
	}
	if rec.LastSeq != 1 || len(rec.Records) != 1 {
		t.Fatalf("recovered to %d with %d records, want generation 1", rec.LastSeq, len(rec.Records))
	}
}

// TestShortReadInjection fails recovery when the wal.read hook
// shortens the segment image mid-record — indistinguishable from a
// truncated file, so the torn-tail rules apply.
func TestShortReadInjection(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append(execRec(1, "a(1).")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(execRec(2, "a(2).")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	restore := faultinject.SetData(faultinject.SiteWALRead, func(b []byte) ([]byte, error) {
		return b[:len(b)-4], nil
	})
	defer restore()
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("short read mid-record must recover the prefix: %v", err)
	}
	if !rec.TornTail || rec.LastSeq != 1 {
		t.Fatalf("recovered %+v, want torn tail at generation 1", rec)
	}
}

// TestBitFlipReadInjection fails recovery with ErrCorrupt when the
// wal.read hook flips a bit inside a complete frame.
func TestBitFlipReadInjection(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append(execRec(1, "a(1).")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	restore := faultinject.SetData(faultinject.SiteWALRead, func(b []byte) ([]byte, error) {
		out := append([]byte(nil), b...)
		out[frameHeaderLen+3] ^= 0x10
		return out, nil
	})
	defer restore()
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped read: %v, want ErrCorrupt", err)
	}
}

// TestSnapshotWriteInjection fails a checkpoint through the
// wal.snapshot data hook; the log stays authoritative and a retry
// succeeds.
func TestSnapshotWriteInjection(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if err := s.Append(factsRec(1, "e", tup(term.NewInt(1)))); err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Seq: 1, Rules: "", Facts: []FactRow{{Pred: "e", Tuple: tup(term.NewInt(1))}}}
	injected := errors.New("snapshot device gone")
	restore := faultinject.SetData(faultinject.SiteSnapshotWrite, func(b []byte) ([]byte, error) {
		return nil, injected
	})
	if err := s.WriteSnapshot(snap); !errors.Is(err, injected) {
		t.Fatalf("snapshot write failure not surfaced: %v", err)
	}
	restore()
	if err := s.WriteSnapshot(snap); err != nil {
		t.Fatalf("retry after snapshot failure: %v", err)
	}
	if err := s.Append(factsRec(2, "e", tup(term.NewInt(2)))); err != nil {
		t.Fatalf("log must stay usable after snapshot failure: %v", err)
	}
	s.Close()

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || rec.Snapshot.Seq != 1 || rec.LastSeq != 2 {
		t.Fatalf("recovered %+v", rec)
	}
}
