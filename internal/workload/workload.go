// Package workload generates the synthetic EDBs the experiment suite
// runs on: family trees with countries (sg/scsg, Examples 1.1–1.2),
// flight networks with fares and times (travel, §3), random integer
// lists (append/isort/qsort, §1.2 and §4) and the link/bridge
// expansion-ratio sweep (Algorithm 3.1's threshold experiments).
//
// All generators are deterministic in their seed.
package workload

import (
	"fmt"
	"math/rand"

	"chainsplit/internal/program"
	"chainsplit/internal/term"
)

// FamilyConfig parameterizes a family forest.
type FamilyConfig struct {
	// Generations is the number of ancestor levels above the youngest.
	Generations int
	// Fanout is the number of children per person.
	Fanout int
	// Roots is the number of oldest-generation ancestors.
	Roots int
	// Countries is the number of distinct countries people are born
	// in; same_country holds within a generation for equal countries.
	// 1 means everyone matches everyone (the paper's worst case for
	// chain-following).
	Countries int
	// Seed drives country assignment.
	Seed int64
}

// Family generates parent/2, sibling/2 and same_country/2 facts.
// People are named g<gen>_<idx>; generation 0 is the oldest. sibling
// holds between distinct children of the same parent; the oldest
// generation are siblings of themselves (so sg has seeds).
func Family(cfg FamilyConfig) *program.Program {
	if cfg.Roots <= 0 {
		cfg.Roots = 1
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.Countries <= 0 {
		cfg.Countries = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &program.Program{}
	name := func(gen, idx int) term.Term { return term.NewSym(fmt.Sprintf("g%d_%d", gen, idx)) }

	// Oldest generation: self-siblings (sg seeds).
	for i := 0; i < cfg.Roots; i++ {
		p.Facts = append(p.Facts, program.NewAtom("sibling", name(0, i), name(0, i)))
	}
	prevCount := cfg.Roots
	counts := []int{cfg.Roots}
	for gen := 1; gen <= cfg.Generations; gen++ {
		count := prevCount * cfg.Fanout
		for i := 0; i < count; i++ {
			parent := i / cfg.Fanout
			p.Facts = append(p.Facts, program.NewAtom("parent", name(gen, i), name(gen-1, parent)))
		}
		// Siblings: distinct children of the same parent.
		for parent := 0; parent < prevCount; parent++ {
			for a := 0; a < cfg.Fanout; a++ {
				for b := 0; b < cfg.Fanout; b++ {
					if a == b {
						continue
					}
					p.Facts = append(p.Facts, program.NewAtom("sibling",
						name(gen, parent*cfg.Fanout+a), name(gen, parent*cfg.Fanout+b)))
				}
			}
		}
		prevCount = count
		counts = append(counts, count)
	}
	// Countries: assigned per person; same_country within each
	// generation (cross-generation pairs never join in scsg anyway).
	for gen := 0; gen <= cfg.Generations; gen++ {
		n := counts[gen]
		country := make([]int, n)
		for i := range country {
			country[i] = rng.Intn(cfg.Countries)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if country[i] == country[j] {
					p.Facts = append(p.Facts, program.NewAtom("same_country", name(gen, i), name(gen, j)))
				}
			}
		}
	}
	return p
}

// PersonName returns the name of person idx in generation gen, for
// building queries against a Family workload.
func PersonName(gen, idx int) string { return fmt.Sprintf("g%d_%d", gen, idx) }

// SGRules returns the sg program (paper Example 1.1).
func SGRules() string {
	return `
sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
sg(X, Y) :- sibling(X, Y).
`
}

// SCSGRules returns the scsg program (paper Example 1.2).
func SCSGRules() string {
	return `
scsg(X, Y) :- parent(X, X1), parent(Y, Y1), same_country(X1, Y1), scsg(X1, Y1).
scsg(X, Y) :- sibling(X, Y).
`
}

// FlightsConfig parameterizes a flight network.
type FlightsConfig struct {
	// Cities is the number of airports.
	Cities int
	// OutDegree is the number of departures per city.
	OutDegree int
	// Layered, when set, only allows flights from layer i to i+1
	// (acyclic — evaluation terminates without constraints); otherwise
	// destinations are random (cyclic) with permissive times.
	Layered bool
	// Layers is the number of layers when Layered.
	Layers int
	// MaxFare bounds individual fares (min 10).
	MaxFare int
	Seed    int64
}

// Flights generates flight/6 facts:
// flight(Fno, Departure, DepTime, Arrival, ArrTime, Fare). In layered
// mode departure times exceed the previous layer's arrival times so
// every connection is feasible; in cyclic mode all departures are at
// time 100 and arrivals at time 50, so every connection is feasible
// and routes can grow forever.
func Flights(cfg FlightsConfig) *program.Program {
	if cfg.Cities <= 0 {
		cfg.Cities = 8
	}
	if cfg.OutDegree <= 0 {
		cfg.OutDegree = 2
	}
	if cfg.MaxFare < 10 {
		cfg.MaxFare = 300
	}
	if cfg.Layers <= 0 {
		cfg.Layers = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &program.Program{}
	fno := 0
	add := func(dep, arr term.Term, dt, at, fare int) {
		fno++
		p.Facts = append(p.Facts, program.NewAtom("flight",
			term.NewInt(int64(fno)), dep, term.NewInt(int64(dt)),
			arr, term.NewInt(int64(at)), term.NewInt(int64(fare))))
	}
	fare := func() int { return 10 + rng.Intn(cfg.MaxFare-9) }
	if cfg.Layered {
		city := func(layer, idx int) term.Term {
			return term.NewSym(fmt.Sprintf("c%d_%d", layer, idx))
		}
		for layer := 0; layer < cfg.Layers; layer++ {
			for i := 0; i < cfg.Cities; i++ {
				for d := 0; d < cfg.OutDegree; d++ {
					dst := rng.Intn(cfg.Cities)
					// Departure at layer*100+60 > previous arrival
					// layer*100+40: all connections feasible.
					add(city(layer, i), city(layer+1, dst), layer*100+60, layer*100+140, fare())
				}
			}
		}
	} else {
		city := func(idx int) term.Term { return term.NewSym(fmt.Sprintf("c%d", idx)) }
		for i := 0; i < cfg.Cities; i++ {
			for d := 0; d < cfg.OutDegree; d++ {
				dst := rng.Intn(cfg.Cities)
				add(city(i), city(dst), 100, 50, fare())
			}
		}
	}
	return p
}

// CityName returns city names matching the Flights generator: layered
// mode uses CityName(layer, idx), cyclic mode uses CityName(-1, idx).
func CityName(layer, idx int) string {
	if layer < 0 {
		return fmt.Sprintf("c%d", idx)
	}
	return fmt.Sprintf("c%d_%d", layer, idx)
}

// TravelRules returns the travel program (paper §3, compiled form 3.6).
func TravelRules() string {
	return `
travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A, AT, F), cons(Fno, [], L).
travel(L, D, DT, A, AT, F) :-
    flight(Fno, D, DT, A1, AT1, F1),
    travel(L1, A1, DT1, A, AT, F2),
    DT1 > AT1,
    plus(F1, F2, F),
    cons(Fno, L1, L).
`
}

// RandomInts returns n pseudo-random integers in [0, max).
func RandomInts(n int, max int64, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(max)
	}
	return out
}

// SortRules returns the isort and qsort programs (paper §4).
func SortRules() string {
	return `
isort([X|Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
isort([], []).
insert(X, [], [X]).
insert(X, [Y|Ys], [Y|Zs]) :- X > Y, insert(X, Ys, Zs).
insert(X, [Y|Ys], [X,Y|Ys]) :- X =< Y.
qsort([X|Xs], Ys) :-
    partition(Xs, X, Littles, Bigs),
    qsort(Littles, Ls), qsort(Bigs, Bs),
    append(Ls, [X|Bs], Ys).
qsort([], []).
partition([X|Xs], Y, [X|Ls], Bs) :- X =< Y, partition(Xs, Y, Ls, Bs).
partition([X|Xs], Y, Ls, [X|Bs]) :- X > Y, partition(Xs, Y, Ls, Bs).
partition([], Y, [], []).
append([], L, L).
append([X|L1], L2, [X|L3]) :- append(L1, L2, L3).
`
}

// AppendRules returns just the append program (paper §1.2).
func AppendRules() string {
	return `
append([], L, L).
append([X|L1], L2, [X|L3]) :- append(L1, L2, L3).
`
}

// AlternatingConfig parameterizes the mutual-recursion workload: a
// layered graph whose even layers carry a-edges and odd layers
// b-edges, so reachability must alternate predicates.
type AlternatingConfig struct {
	// Layers is the number of edge layers.
	Layers int
	// Width is the number of nodes per layer.
	Width int
	// OutDegree is the number of edges per node.
	OutDegree int
	Seed      int64
}

// Alternating generates aEdge/2 and bEdge/2 facts over a layered graph.
func Alternating(cfg AlternatingConfig) *program.Program {
	if cfg.Layers <= 0 {
		cfg.Layers = 4
	}
	if cfg.Width <= 0 {
		cfg.Width = 3
	}
	if cfg.OutDegree <= 0 {
		cfg.OutDegree = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &program.Program{}
	node := func(layer, idx int) term.Term { return term.NewSym(fmt.Sprintf("m%d_%d", layer, idx)) }
	for l := 0; l < cfg.Layers; l++ {
		pred := "aEdge"
		if l%2 == 1 {
			pred = "bEdge"
		}
		for i := 0; i < cfg.Width; i++ {
			for d := 0; d < cfg.OutDegree; d++ {
				p.Facts = append(p.Facts, program.NewAtom(pred, node(l, i), node(l+1, rng.Intn(cfg.Width))))
			}
		}
	}
	return p
}

// AlternatingRules returns the mutually recursive alternating-color
// reachability program.
func AlternatingRules() string {
	return `
reachA(X, Y) :- aEdge(X, Y).
reachA(X, Y) :- aEdge(X, Z), reachB(Z, Y).
reachB(X, Y) :- bEdge(X, Y).
reachB(X, Y) :- bEdge(X, Z), reachA(Z, Y).
`
}

// NodeName returns node names matching the Alternating generator.
func NodeName(layer, idx int) string { return fmt.Sprintf("m%d_%d", layer, idx) }

// BridgeConfig parameterizes the expansion-ratio sweep workload.
type BridgeConfig struct {
	// Depth is the chain length (recursion depth to the base).
	Depth int
	// Expansion is the bridge fanout r: each up-node connects to r
	// flat-nodes — the join expansion ratio of the bridge connection.
	Expansion int
	Seed      int64
}

// Bridge generates the T3 workload: an scsg-shaped recursion whose
// chain generating path contains a connection (bridge) with a tunable
// join expansion ratio.
//
//	r2(X, Y) :- up(X, X1), down(Y, Y1), bridge(X1, Y1), r2(X1, Y1).
//	r2(X, Y) :- base(X, Y).
//
// The X side is a chain a0 → a1 → … → aD (up); the Y side has
// Expansion parallel chains b_i_j (down); bridge connects a_i to every
// b_i_j, so its expansion ratio with X1 bound is exactly Expansion.
// Following the binding through bridge makes the magic set hold
// (a_i, b_i_j) pairs — Expansion per level; splitting keeps it at one
// a_i per level.
func Bridge(cfg BridgeConfig) *program.Program {
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.Expansion <= 0 {
		cfg.Expansion = 1
	}
	p := &program.Program{}
	a := func(i int) term.Term { return term.NewSym(fmt.Sprintf("a%d", i)) }
	b := func(i, j int) term.Term { return term.NewSym(fmt.Sprintf("b%d_%d", i, j)) }
	for i := 0; i < cfg.Depth; i++ {
		p.Facts = append(p.Facts, program.NewAtom("up", a(i), a(i+1)))
		for j := 0; j < cfg.Expansion; j++ {
			p.Facts = append(p.Facts, program.NewAtom("down", b(i, j), b(i+1, j)))
			p.Facts = append(p.Facts, program.NewAtom("bridge", a(i+1), b(i+1, j)))
		}
	}
	for j := 0; j < cfg.Expansion; j++ {
		p.Facts = append(p.Facts, program.NewAtom("base", a(cfg.Depth), b(cfg.Depth, j)))
	}
	return p
}

// BridgeRules returns the r2 program for the Bridge workload.
func BridgeRules() string {
	return `
r2(X, Y) :- up(X, X1), down(Y, Y1), bridge(X1, Y1), r2(X1, Y1).
r2(X, Y) :- base(X, Y).
`
}
