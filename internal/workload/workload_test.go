package workload

import (
	"fmt"
	"testing"

	"chainsplit/internal/core"
	"chainsplit/internal/lang"
	"chainsplit/internal/program"
	"chainsplit/internal/term"
)

// loadDB builds a core.DB from rules source plus generated facts.
func loadDB(t *testing.T, rules string, facts *program.Program) *core.DB {
	t.Helper()
	res, err := lang.Parse(rules)
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDB()
	db.Load(res.Program)
	db.Load(facts)
	return db
}

func ask(t *testing.T, db *core.DB, q string, opts core.Options) *core.Result {
	t.Helper()
	goals, err := lang.ParseQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(goals.Goals, opts)
	if err != nil {
		t.Fatalf("Query(%s): %v", q, err)
	}
	return res
}

func TestFamilyShape(t *testing.T) {
	p := Family(FamilyConfig{Generations: 2, Fanout: 2, Roots: 1, Countries: 2, Seed: 1})
	counts := map[string]int{}
	for _, f := range p.Facts {
		counts[f.Pred]++
	}
	// Generations: g0 (1 root), g1 (2), g2 (4). parent: 2 + 4 = 6.
	if counts["parent"] != 6 {
		t.Errorf("parent = %d, want 6", counts["parent"])
	}
	// Siblings: self-sibling root (1) + g1: 2 ordered pairs + g2: each
	// of 2 parents × 2 ordered pairs = 4. Total 1 + 2 + 4 = 7.
	if counts["sibling"] != 7 {
		t.Errorf("sibling = %d, want 7", counts["sibling"])
	}
	if counts["same_country"] == 0 {
		t.Error("no same_country facts")
	}
}

func TestFamilyDeterministic(t *testing.T) {
	a := Family(FamilyConfig{Generations: 2, Fanout: 2, Roots: 1, Countries: 3, Seed: 9})
	b := Family(FamilyConfig{Generations: 2, Fanout: 2, Roots: 1, Countries: 3, Seed: 9})
	if a.String() != b.String() {
		t.Error("Family not deterministic")
	}
}

func TestFamilySGSanity(t *testing.T) {
	// Two cousins in generation 2 are same-generation relatives.
	p := Family(FamilyConfig{Generations: 2, Fanout: 2, Roots: 1, Countries: 1, Seed: 1})
	db := loadDB(t, SGRules(), p)
	res := ask(t, db, fmt.Sprintf("?- sg(%s, Y).", PersonName(2, 0)), core.Options{})
	// g2_0's same-generation set: all of g2 (cousins via g0 root's
	// self-sibling and siblings via parents).
	if len(res.Answers) != 4 {
		t.Errorf("sg answers = %d, want 4: %v", len(res.Answers), res.Answers)
	}
}

func TestFamilySCSGSanityCountries(t *testing.T) {
	// With one country, scsg == sg restricted to same-country parents
	// (everyone matches). With many countries, fewer or equal answers.
	p1 := Family(FamilyConfig{Generations: 3, Fanout: 2, Roots: 1, Countries: 1, Seed: 3})
	db1 := loadDB(t, SCSGRules(), p1)
	res1 := ask(t, db1, fmt.Sprintf("?- scsg(%s, Y).", PersonName(3, 0)), core.Options{})

	p2 := Family(FamilyConfig{Generations: 3, Fanout: 2, Roots: 1, Countries: 8, Seed: 3})
	db2 := loadDB(t, SCSGRules(), p2)
	res2 := ask(t, db2, fmt.Sprintf("?- scsg(%s, Y).", PersonName(3, 0)), core.Options{})

	if len(res1.Answers) == 0 {
		t.Fatal("one-country scsg has no answers")
	}
	if len(res2.Answers) > len(res1.Answers) {
		t.Errorf("more countries gave more answers: %d > %d", len(res2.Answers), len(res1.Answers))
	}
}

func TestSCSGPolicyAgreementOnWorkload(t *testing.T) {
	p := Family(FamilyConfig{Generations: 3, Fanout: 2, Roots: 1, Countries: 2, Seed: 5})
	goal := fmt.Sprintf("?- scsg(%s, Y).", PersonName(3, 1))
	var counts []int
	for _, s := range []core.Strategy{core.StrategyMagicFollow, core.StrategyMagic, core.StrategyMagicSplit, core.StrategyTopDown} {
		db := loadDB(t, SCSGRules(), p)
		res := ask(t, db, goal, core.Options{Strategy: s})
		counts = append(counts, len(res.Answers))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("strategy disagreement: %v", counts)
		}
	}
}

func TestFlightsLayeredAcyclic(t *testing.T) {
	p := Flights(FlightsConfig{Cities: 3, OutDegree: 2, Layered: true, Layers: 3, Seed: 7})
	if len(p.Facts) != 3*3*2 {
		t.Errorf("flights = %d, want 18", len(p.Facts))
	}
	db := loadDB(t, TravelRules(), p)
	res := ask(t, db, fmt.Sprintf("?- travel(L, %s, DT, A, AT, F).", CityName(0, 0)), core.Options{})
	if len(res.Answers) == 0 {
		t.Fatal("no itineraries in layered network")
	}
	// Max route length = Layers.
	for _, a := range res.Answers {
		if n := term.ListLen(a[0]); n < 1 || n > 3 {
			t.Errorf("route length %d out of range: %v", n, a)
		}
	}
}

func TestFlightsCyclicDivergesWithoutConstraint(t *testing.T) {
	p := Flights(FlightsConfig{Cities: 3, OutDegree: 2, Seed: 7})
	db := loadDB(t, TravelRules(), p)
	goals, _ := lang.ParseQuery(fmt.Sprintf("?- travel(L, %s, DT, A, AT, F).", CityName(-1, 0)))
	_, err := db.Query(goals.Goals, core.Options{MaxLevels: 50, MaxAnswers: 2000})
	if err == nil {
		t.Fatal("cyclic unconstrained travel terminated (expected budget error)")
	}
}

func TestFlightsCyclicTerminatesWithFareBound(t *testing.T) {
	p := Flights(FlightsConfig{Cities: 3, OutDegree: 2, MaxFare: 100, Seed: 7})
	db := loadDB(t, TravelRules(), p)
	res := ask(t, db, fmt.Sprintf("?- travel(L, %s, DT, A, AT, F), F =< 150.", CityName(-1, 0)), core.Options{MaxLevels: 500})
	if len(res.Plan.Pushed) == 0 {
		t.Fatalf("fare bound not pushed: %v", res.Plan.NotPushed)
	}
	for _, a := range res.Answers {
		if a[5].(term.Int).V > 150 {
			t.Errorf("violating fare: %v", a)
		}
	}
}

func TestBridgeExpansionControlsMagicSize(t *testing.T) {
	for _, r := range []int{1, 3, 6} {
		p := Bridge(BridgeConfig{Depth: 4, Expansion: r})
		dbF := loadDB(t, BridgeRules(), p)
		resF := ask(t, dbF, "?- r2(a0, Y).", core.Options{Strategy: core.StrategyMagicFollow})
		dbS := loadDB(t, BridgeRules(), p)
		resS := ask(t, dbS, "?- r2(a0, Y).", core.Options{Strategy: core.StrategyMagicSplit})
		if len(resF.Answers) != len(resS.Answers) {
			t.Fatalf("r=%d: follow %d answers, split %d", r, len(resF.Answers), len(resS.Answers))
		}
		if len(resF.Answers) != r {
			t.Errorf("r=%d: %d answers, want %d", r, len(resF.Answers), r)
		}
		if r > 1 && resF.Metrics.MagicTuples <= resS.Metrics.MagicTuples {
			t.Errorf("r=%d: follow magic %d not larger than split magic %d",
				r, resF.Metrics.MagicTuples, resS.Metrics.MagicTuples)
		}
	}
}

func TestAlternatingWorkload(t *testing.T) {
	p := Alternating(AlternatingConfig{Layers: 4, Width: 3, OutDegree: 2, Seed: 5})
	counts := map[string]int{}
	for _, f := range p.Facts {
		counts[f.Pred]++
	}
	// Even layers (0, 2) emit aEdge, odd (1, 3) bEdge: 2 layers × 3
	// nodes × 2 out-degree each.
	if counts["aEdge"] != 12 || counts["bEdge"] != 12 {
		t.Errorf("counts = %v", counts)
	}
	// Defaults fill in.
	d := Alternating(AlternatingConfig{})
	if len(d.Facts) == 0 {
		t.Error("default Alternating produced no facts")
	}
	if NodeName(0, 0) != "m0_0" {
		t.Errorf("NodeName = %q", NodeName(0, 0))
	}
	// The rules parse and evaluate against the workload.
	db := loadDB(t, AlternatingRules(), p)
	res := ask(t, db, "?- reachA(m0_0, Y).", core.Options{})
	if len(res.Answers) == 0 {
		t.Error("no alternating reachability")
	}
}

func TestWorkloadDefaults(t *testing.T) {
	// Zero-valued configs must produce sane workloads, not panics.
	if len(Family(FamilyConfig{}).Facts) == 0 {
		t.Error("default Family empty")
	}
	if len(Flights(FlightsConfig{}).Facts) == 0 {
		t.Error("default Flights empty")
	}
	if len(Bridge(BridgeConfig{}).Facts) == 0 {
		t.Error("default Bridge empty")
	}
	if AppendRules() == "" || SortRules() == "" || TravelRules() == "" {
		t.Error("rule sources empty")
	}
}

func TestRandomInts(t *testing.T) {
	a := RandomInts(10, 100, 42)
	b := RandomInts(10, 100, 42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("RandomInts not deterministic")
	}
	for _, v := range a {
		if v < 0 || v >= 100 {
			t.Errorf("out of range: %d", v)
		}
	}
}

func TestSortRulesRun(t *testing.T) {
	res, err := lang.Parse(SortRules())
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDB()
	db.Load(res.Program)
	vals := RandomInts(8, 50, 3)
	goal := program.NewAtom("isort", term.IntList(vals...), term.NewVar("Ys"))
	out, err := db.Query([]program.Atom{goal}, core.Options{})
	if err != nil || len(out.Answers) != 1 {
		t.Fatalf("isort on workload: %v %v", out, err)
	}
}
