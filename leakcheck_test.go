package chainsplit

// Shared goroutine-leak guard for the chaos soaks. Each soak spins up
// worker pools, replication sessions, listeners and coordinators; the
// guard proves they are all gone once the soak has closed everything
// — no goroutine stuck on a lock, channel or socket.

import (
	"runtime"
	"testing"
	"time"
)

// leakGuard snapshots the goroutine count now and returns a check to
// run after every resource has been closed. The check polls (bounded
// by 5s) because exiting goroutines need a beat to unwind; a small
// tolerance absorbs runtime helpers. On a leak it fails the test with
// a full stack dump of everything still running.
func leakGuard(t *testing.T) (check func()) {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base+5 {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Fatalf("goroutine leak: %d now vs %d at start\n%s",
					runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
