package chainsplit

// Failed-attempt isolation: when a query is re-run — by the retry
// layer or by the Auto-strategy fallback — the per-round delta
// profiles and trace events of the failed attempt must not leak into
// (or alias) the final result's metrics. Each attempt gets a fresh
// trace sink and fresh engine stats; the final result carries exactly
// what its own (successful) attempt produced.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"chainsplit/internal/faultinject"
	"chainsplit/internal/obsv"
)

// traceShape summarizes the attempt-scoped parts of a result's metrics
// for clean-run vs. retried-run comparison.
type traceShape struct {
	deltas      int
	queryBegins int
	rounds      int
	fallbacks   int
}

func shapeOf(res *Result) traceShape {
	var s traceShape
	s.deltas = len(res.Metrics.Deltas)
	for _, ev := range res.Metrics.TraceEvents {
		switch {
		case ev.Phase == obsv.PhaseQuery && ev.Kind == obsv.KindBegin:
			s.queryBegins++
		case ev.Phase == obsv.PhaseRound:
			s.rounds++
		case ev.Phase == obsv.PhaseFallback:
			s.fallbacks++
		}
	}
	return s
}

func TestRetriedQueryMetricsMatchCleanRun(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db, err := OpenWith(Config{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			mustExec(t, db, finiteTCSrc)
			opts := []Option{WithStrategy(StrategySeminaive), WithTrace()}

			clean, err := db.Query("?- tc(n0, Y).", opts...)
			if err != nil {
				t.Fatal(err)
			}
			want := shapeOf(clean)
			if want.deltas == 0 || want.rounds == 0 {
				t.Fatalf("clean traced run has no deltas/round events: %+v", want)
			}

			// First attempt dies mid-evaluation — after at least one
			// round has already recorded deltas and trace events — then
			// the site heals and the retry succeeds.
			var calls atomic.Int64
			restore := faultinject.Set(faultinject.SiteSeminaiveIterate, func() error {
				if calls.Add(1) == 2 {
					panic("leak test: injected mid-evaluation panic")
				}
				return nil
			})
			defer restore()
			res, err := db.Query("?- tc(n0, Y).",
				append(opts, WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, Seed: 1}))...)
			if err != nil {
				t.Fatalf("retry did not recover: %v", err)
			}
			if res.Metrics.Retries != 1 {
				t.Fatalf("Retries = %d, want 1", res.Metrics.Retries)
			}
			if len(res.Rows) != len(clean.Rows) {
				t.Fatalf("answers = %d, want %d", len(res.Rows), len(clean.Rows))
			}
			got := shapeOf(res)
			if got != want {
				t.Errorf("retried result's metrics differ from a clean run's:\n got %+v\nwant %+v\n(failed attempt leaked into the final result)", got, want)
			}
		})
	}
}

func TestFallbackRerunMetricsAreFresh(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db, err := OpenWith(Config{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			mustExec(t, db, finiteTCSrc)

			// Baseline: what a direct traced semi-naive run produces —
			// the fallback re-run must match it, not accumulate the
			// failed magic attempt's events on top.
			clean, err := db.Query("?- tc(n0, Y).", WithStrategy(StrategySeminaive), WithTrace())
			if err != nil {
				t.Fatal(err)
			}
			want := shapeOf(clean)

			restore := faultinject.Set(faultinject.SiteMagicRewrite, func() error {
				panic("leak test: injected rewrite panic")
			})
			defer restore()
			res, err := db.Query("?- tc(n0, Y).", WithTrace())
			if err != nil {
				t.Fatalf("fallback did not recover: %v", err)
			}
			if res.Metrics.FallbackFrom == "" {
				t.Fatal("query did not fall back; the leak scenario never ran")
			}
			got := shapeOf(res)
			if got.queryBegins != 1 {
				t.Errorf("final result carries %d query-begin events, want 1 (fresh tracer per attempt)", got.queryBegins)
			}
			if got.fallbacks != 1 {
				t.Errorf("fallback events = %d, want 1", got.fallbacks)
			}
			if got.deltas != want.deltas || got.rounds != want.rounds {
				t.Errorf("fallback run deltas/rounds = %d/%d, want %d/%d (failed attempt leaked)",
					got.deltas, got.rounds, want.deltas, want.rounds)
			}
		})
	}
}
