package chainsplit

import (
	"sync"
	"testing"
)

func preludeDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	if err := db.Exec(Prelude); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPreludeMember(t *testing.T) {
	db := preludeDB(t)
	res, err := db.Query("?- member(X, [1,2,3]).")
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("member: %v %v", res, err)
	}
	res, err = db.Query("?- member(2, [1,2,3]).")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("member check: %v %v", res, err)
	}
	res, err = db.Query("?- member(9, [1,2,3]).")
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("member negative: %v %v", res, err)
	}
}

func TestPreludeSelect(t *testing.T) {
	db := preludeDB(t)
	res, err := db.Query("?- select(X, [1,2,3], Rest).")
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("select: %v %v", res, err)
	}
}

func TestPreludePermBothWays(t *testing.T) {
	db := preludeDB(t)
	res, err := db.Query("?- perm([1,2,3], P).")
	if err != nil || len(res.Rows) != 6 {
		t.Fatalf("perm forward: %d rows, err %v", len(res.Rows), err)
	}
	res, err = db.Query("?- perm(P, [1,2,3]).")
	if err != nil || len(res.Rows) != 6 {
		t.Fatalf("perm backward: %d rows, err %v", len(res.Rows), err)
	}
}

func TestPreludeReverse(t *testing.T) {
	db := preludeDB(t)
	res, err := db.Query("?- reverse([1,2,3], R).")
	if err != nil || len(res.Rows) != 1 || res.Rows[0]["R"].String() != "[3, 2, 1]" {
		t.Fatalf("reverse: %v %v", res, err)
	}
	res, err = db.Query("?- reverse([], R).")
	if err != nil || res.Rows[0]["R"].String() != "[]" {
		t.Fatalf("reverse empty: %v %v", res, err)
	}
}

func TestPreludeNth(t *testing.T) {
	db := preludeDB(t)
	res, err := db.Query("?- nth(1, [7,8,9], X).")
	if err != nil || len(res.Rows) != 1 || res.Rows[0]["X"].String() != "8" {
		t.Fatalf("nth: %v %v", res, err)
	}
	res, err = db.Query("?- nth(5, [7,8,9], X).")
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("nth out of range: %v %v", res, err)
	}
}

func TestPreludeRange(t *testing.T) {
	db := preludeDB(t)
	res, err := db.Query("?- range(4, B).")
	if err != nil || len(res.Rows) != 1 || res.Rows[0]["B"].String() != "[4, 3, 2, 1]" {
		t.Fatalf("range: %v %v", res, err)
	}
}

func TestWithLimit(t *testing.T) {
	db := preludeDB(t)
	res, err := db.Query("?- perm([1,2,3,4], P).", WithLimit(1))
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("limit: %d rows, err %v", len(res.Rows), err)
	}
}

func TestLoadFacts(t *testing.T) {
	db := Open()
	if err := db.LoadFacts("edge", [][]Term{
		{Sym("a"), Sym("b")},
		{Sym("b"), Sym("c")},
	}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "reach(X,Y) :- edge(X,Y).\nreach(X,Y) :- edge(X,Z), reach(Z,Y).")
	res, err := db.Query("?- reach(a, Y).")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("reach: %v %v", res, err)
	}
	// Arity mismatch and non-ground tuples rejected.
	if err := db.LoadFacts("edge", [][]Term{{Sym("x")}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	v, _ := ParseTerm("X")
	if err := db.LoadFacts("e2", [][]Term{{v, Sym("y")}}); err == nil {
		t.Error("non-ground tuple accepted")
	}
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	db := Open()
	mustExec(t, db, `
@threshold split 4.
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- edge(X, Z), reach(Z, Y).
lists([1, 2, 3]).
isolated(X) :- node(X), \+ reach(a, X).
node(a). node(d).
edge(a, b). edge(b, c).
`)
	path := t.TempDir() + "/saved.dl"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2 := Open()
	if err := db2.ExecFile(path); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"?- reach(a, Y).", "?- lists(L).", "?- isolated(X)."} {
		r1, err1 := db.Query(q)
		r2, err2 := db2.Query(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", q, err1, err2)
		}
		if len(r1.Rows) != len(r2.Rows) {
			t.Errorf("%s: %d vs %d rows after restore", q, len(r1.Rows), len(r2.Rows))
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	db := preludeDB(t)
	mustExec(t, db, "edge(a, b). edge(b, c).")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if i%2 == 0 {
					if _, err := db.Query("?- member(X, [1,2,3])."); err != nil {
						t.Errorf("query: %v", err)
						return
					}
				} else if err := db.Exec("% comment only\n"); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
