package chainsplit

// Replica chaos soak: seeded cycles of leader-crash / partition / lag /
// promote under concurrent replicated reads. Each cycle a leader serves
// its WAL to a durable follower and a staleness-bounded in-memory
// follower while a chaos agent flips faults at the replication network
// sites (send corruption and errors, receive errors, link lag); at the
// end of the cycle the leader "crashes" (Close), the durable follower
// is promoted at exactly its last durable generation, and the next
// cycle runs against the promoted node. The invariants:
//
//   - every follower read is bit-identical to SOME leader generation —
//     the mark relation in any published generation g is exactly
//     {0 .. g-1}, so a read that is not a contiguous prefix is a torn
//     or corrupted view — or a typed ErrStale; never silently wrong;
//   - a follower's generation never passes the leader's (prefix rule);
//   - promotion never invents or drops a durable generation;
//   - the promoted node's re-logged WAL passes fsck at the end;
//   - no goroutine leaks after every handle is closed.
//
// Seed and duration come from CHAINSPLIT_SOAK_SEED and
// CHAINSPLIT_SOAK_DURATION, as for the other soaks.

import (
	"errors"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chainsplit/internal/faultinject"
)

// checkMarkPrefix asserts a mark read is a contiguous prefix {0..n-1}:
// bit-identical to the leader's state at generation n.
func checkMarkPrefix(t *testing.T, who string, res *Result) {
	t.Helper()
	seen := make(map[string]bool, len(res.Tuples))
	for _, tup := range res.Tuples {
		seen[tup[0].String()] = true
	}
	if len(seen) != len(res.Tuples) {
		t.Errorf("%s: duplicate marks in a %d-row read", who, len(res.Tuples))
		return
	}
	for i := 0; i < len(res.Tuples); i++ {
		if !seen[strconv.Itoa(i)] {
			t.Errorf("%s: %d marks but %d missing — not a generation prefix", who, len(res.Tuples), i)
			return
		}
	}
}

func TestReplicaChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	seed := soakEnvInt64("CHAINSPLIT_SOAK_SEED", time.Now().UnixNano())
	duration := time.Duration(soakEnvInt64("CHAINSPLIT_SOAK_DURATION",
		int64(2*time.Second)))
	t.Logf("replica soak: seed=%d duration=%v (override with CHAINSPLIT_SOAK_SEED / CHAINSPLIT_SOAK_DURATION)", seed, duration)
	defer faultinject.Reset()

	checkLeaks := leakGuard(t)
	rng := rand.New(rand.NewSource(seed ^ 0x4e7f))
	deadline := time.Now().Add(duration)

	leader, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Generation 1 carries mark 0; every generation after adds the next
	// mark, so generation g holds exactly marks {0..g-1}.
	mustExec(t, leader, "m(0).")

	var staleSheds, corruptions, promotions int64
	cycles := 0
	for cycles == 0 || time.Now().Before(deadline) {
		cycles++
		addr, err := leader.ServeReplication("127.0.0.1:0")
		if err != nil {
			t.Fatalf("cycle %d: serve: %v", cycles, err)
		}
		durableF, err := OpenFollower(addr, Config{Dir: t.TempDir()})
		if err != nil {
			t.Fatalf("cycle %d: durable follower: %v", cycles, err)
		}
		boundedF, err := OpenFollower(addr, Config{MaxStaleness: 75 * time.Millisecond})
		if err != nil {
			t.Fatalf("cycle %d: bounded follower: %v", cycles, err)
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup

		// Replicated readers: one per node. Every read is a correct
		// prefix or a typed shed — nothing else.
		for _, node := range []struct {
			who string
			db  *DB
		}{{"leader", leader}, {"durable-follower", durableF}, {"bounded-follower", boundedF}} {
			node := node
			rrng := rand.New(rand.NewSource(seed + int64(cycles*7+len(node.who))))
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if node.db.IsFollower() {
						if fgen := node.db.Generation(); fgen > leader.Generation() {
							// The leader publishes after logging, and the
							// serving tail reads the log: a shipped record
							// can land on a follower in the instant between
							// the leader's fsync and its own publish. The
							// inversion is bounded by that in-flight
							// mutation — it must resolve the moment the
							// leader's publish completes. Anything that
							// persists is true divergence.
							rdl := time.Now().Add(time.Second)
							for leader.Generation() < fgen {
								if time.Now().After(rdl) {
									t.Errorf("%s: generation %d passed the leader's %d and stayed there", node.who, fgen, leader.Generation())
									return
								}
								time.Sleep(100 * time.Microsecond)
							}
						}
					}
					res, err := node.db.Query("?- m(K).")
					switch {
					case err == nil:
						checkMarkPrefix(t, node.who, res)
					case errors.Is(err, ErrStale):
						atomic.AddInt64(&staleSheds, 1)
					default:
						t.Errorf("%s: read failed outside the taxonomy: %v", node.who, err)
						return
					}
					time.Sleep(time.Duration(rrng.Intn(3)) * time.Millisecond)
				}
			}()
		}

		// Chaos agent: partitions (send/recv errors), corruption (bit
		// flips in shipped frames), and link lag, flipping on and off
		// at the replication network sites.
		wg.Add(1)
		go func() {
			defer wg.Done()
			crng := rand.New(rand.NewSource(seed + int64(cycles)*101))
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch crng.Intn(6) {
				case 0: // outbound partition
					faultinject.SetData(faultinject.SiteReplicaSend, func([]byte) ([]byte, error) {
						return nil, errors.New("soak: injected send partition")
					})
				case 1: // inbound partition
					faultinject.SetData(faultinject.SiteReplicaRecv, func([]byte) ([]byte, error) {
						return nil, errors.New("soak: injected recv partition")
					})
				case 2: // corruption on the wire
					atomic.AddInt64(&corruptions, 1)
					bit := byte(1 << crng.Intn(8))
					off := crng.Intn(64)
					faultinject.SetData(faultinject.SiteReplicaSend, func(b []byte) ([]byte, error) {
						if len(b) == 0 {
							return b, nil
						}
						mangled := append([]byte(nil), b...)
						mangled[off%len(mangled)] ^= bit
						return mangled, nil
					})
				case 3: // link lag
					lag := time.Duration(1+crng.Intn(5)) * time.Millisecond
					faultinject.Set(faultinject.SiteReplicaLag, func() error {
						time.Sleep(lag)
						return nil
					})
				case 4:
					faultinject.Clear(faultinject.SiteReplicaSend)
					faultinject.Clear(faultinject.SiteReplicaRecv)
				case 5:
					faultinject.Clear(faultinject.SiteReplicaLag)
				}
				time.Sleep(time.Duration(5+crng.Intn(15)) * time.Millisecond)
			}
		}()

		// Writer: the next mark per generation, with occasional
		// checkpoints so reconnecting followers exercise the shipped-
		// snapshot bootstrap path, for a random slice of the soak.
		cycleEnd := time.Now().Add(time.Duration(200+rng.Intn(300)) * time.Millisecond)
		for time.Now().Before(cycleEnd) {
			if err := leader.LoadFacts("m", [][]Term{{Int(int64(leader.Generation()))}}); err != nil {
				t.Fatalf("cycle %d: leader write: %v", cycles, err)
			}
			if rng.Intn(8) == 0 {
				if err := leader.Checkpoint(); err != nil {
					t.Fatalf("cycle %d: checkpoint: %v", cycles, err)
				}
			}
			time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
		}

		close(stop)
		wg.Wait()
		faultinject.Reset()

		// Faults healed: the durable follower must converge to the
		// leader's exact state.
		waitCaughtUp(t, durableF, leader.Generation())
		if got, want := answers(t, durableF, "?- m(K)."), answers(t, leader, "?- m(K)."); got != want {
			t.Fatalf("cycle %d: converged follower differs from leader:\nleader:\n%s\nfollower:\n%s", cycles, want, got)
		}

		// Failover: the leader crashes; the durable follower is
		// promoted at exactly its last durable generation and serves
		// the next cycle.
		if err := boundedF.Close(); err != nil {
			t.Fatalf("cycle %d: bounded follower close: %v", cycles, err)
		}
		if err := leader.Close(); err != nil {
			t.Fatalf("cycle %d: leader close: %v", cycles, err)
		}
		promGen := durableF.Generation()
		if err := durableF.Promote(); err != nil {
			t.Fatalf("cycle %d: promote: %v", cycles, err)
		}
		promotions++
		if durableF.IsFollower() {
			t.Fatalf("cycle %d: promoted node still a follower", cycles)
		}
		if got := durableF.Generation(); got != promGen {
			t.Fatalf("cycle %d: promotion moved the generation %d -> %d", cycles, promGen, got)
		}
		leader = durableF
	}

	// The last promoted node answers exactly, and its re-logged WAL —
	// written entirely from shipped records — is fsck-clean.
	finalGen := leader.Generation()
	res, err := leader.Query("?- m(K).")
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	if uint64(len(res.Tuples)) != finalGen {
		t.Fatalf("final: %d marks at generation %d", len(res.Tuples), finalGen)
	}
	checkMarkPrefix(t, "final-leader", res)
	dir := leader.inner.DurableDir()
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	if dir != "" {
		report, ok, err := Fsck(dir)
		if err != nil || !ok {
			t.Fatalf("post-soak fsck of the promoted node: ok=%v err=%v\n%s", ok, err, report)
		}
	}

	t.Logf("replica soak: %d cycles, %d promotions, %d corruption faults, %d stale sheds, final generation %d",
		cycles, promotions, corruptions, atomic.LoadInt64(&staleSheds), finalGen)

	checkLeaks()
}
