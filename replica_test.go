package chainsplit

// Functional replication tests: leader/follower streaming, durable
// resume, snapshot bootstrap, staleness shedding, promotion, and the
// injected network faults. The randomized multi-replica chaos soak is
// TestReplicaChaosSoak in replica_soak_test.go.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"chainsplit/internal/faultinject"
	"chainsplit/internal/replica"
)

// waitCaughtUp polls until the follower's generation reaches want.
func waitCaughtUp(t *testing.T, f *DB, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for f.Generation() < want {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at generation %d, want %d", f.Generation(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// answers renders a result's tuples in order, for bit-identity
// comparison across replicas.
func answers(t *testing.T, db *DB, q string) string {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	out := ""
	for _, tup := range res.Tuples {
		for _, v := range tup {
			out += v.String() + "|"
		}
		out += "\n"
	}
	return out
}

func TestReplicationBasic(t *testing.T) {
	leader, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if err := leader.Exec(`
		edge(a, b). edge(b, c). edge(c, d).
		path(X, Y) :- edge(X, Y).
		path(X, Y) :- edge(X, Z), path(Z, Y).
	`); err != nil {
		t.Fatal(err)
	}
	addr, err := leader.ServeReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	follower, err := OpenFollower(addr, Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitCaughtUp(t, follower, leader.Generation())

	if !follower.IsFollower() {
		t.Fatal("follower does not report IsFollower")
	}
	if got, want := answers(t, follower, "?- path(a, Y)."), answers(t, leader, "?- path(a, Y)."); got != want {
		t.Fatalf("follower answers differ:\nleader:\n%s\nfollower:\n%s", want, got)
	}

	// Writes land on the leader and flow through.
	if err := leader.LoadFacts("edge", [][]Term{{Sym("d"), Sym("e")}}); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, follower, leader.Generation())
	if got, want := answers(t, follower, "?- path(a, Y)."), answers(t, leader, "?- path(a, Y)."); got != want {
		t.Fatalf("post-write answers differ:\nleader:\n%s\nfollower:\n%s", want, got)
	}

	// Writes on the follower are refused, typed.
	if err := follower.Exec("edge(x, y)."); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("follower Exec: got %v, want ErrNotLeader", err)
	}
	if err := follower.LoadFacts("edge", [][]Term{{Sym("p"), Sym("q")}}); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("follower LoadFacts: got %v, want ErrNotLeader", err)
	}
}

func TestFollowerDurableResume(t *testing.T) {
	leader, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	addr, err := leader.ServeReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := leader.LoadFacts("n", [][]Term{{Int(int64(i))}}); err != nil {
			t.Fatal(err)
		}
	}

	fdir := t.TempDir()
	follower, err := OpenFollower(addr, Config{Dir: fdir})
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, follower, leader.Generation())
	gen := follower.Generation()
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// More leader writes while the follower is down.
	for i := 5; i < 10; i++ {
		if err := leader.LoadFacts("n", [][]Term{{Int(int64(i))}}); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen: recover to the old durable generation, then resume the
	// stream from there and catch up.
	follower, err = OpenFollower(addr, Config{Dir: fdir})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if follower.Generation() < gen {
		t.Fatalf("reopened follower at generation %d, had reached %d", follower.Generation(), gen)
	}
	waitCaughtUp(t, follower, leader.Generation())
	if got, want := answers(t, follower, "?- n(X)."), answers(t, leader, "?- n(X)."); got != want {
		t.Fatalf("resumed follower diverged:\nleader:\n%s\nfollower:\n%s", want, got)
	}
}

func TestFollowerSnapshotBootstrap(t *testing.T) {
	// Snapshot every 4 mutations: by the time the follower connects at
	// position 0, the leader's early history is pruned and the stream
	// must start with a shipped snapshot.
	leader, err := OpenWith(Config{Dir: t.TempDir(), SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	for i := 0; i < 20; i++ {
		if err := leader.LoadFacts("n", [][]Term{{Int(int64(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	addr, err := leader.ServeReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	follower, err := OpenFollower(addr, Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitCaughtUp(t, follower, leader.Generation())
	if got, want := answers(t, follower, "?- n(X)."), answers(t, leader, "?- n(X)."); got != want {
		t.Fatalf("bootstrapped follower diverged:\nleader:\n%s\nfollower:\n%s", want, got)
	}

	// Keep writing: the stream continues past the snapshot.
	if err := leader.LoadFacts("n", [][]Term{{Int(99)}}); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, follower, leader.Generation())
	if got, want := answers(t, follower, "?- n(X)."), answers(t, leader, "?- n(X)."); got != want {
		t.Fatalf("post-bootstrap stream diverged:\nleader:\n%s\nfollower:\n%s", want, got)
	}
}

func TestPromoteFollower(t *testing.T) {
	leader, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Exec("n(1). n(2)."); err != nil {
		t.Fatal(err)
	}
	addr, err := leader.ServeReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	follower, err := OpenFollower(addr, Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitCaughtUp(t, follower, leader.Generation())
	wantGen := follower.Generation()

	// Leader dies; the follower is promoted at exactly its last
	// durable generation and becomes writable.
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	if err := follower.Promote(); err != nil {
		t.Fatal(err)
	}
	if follower.IsFollower() {
		t.Fatal("promoted database still reports IsFollower")
	}
	if got := follower.Generation(); got != wantGen {
		t.Fatalf("promotion moved the generation: %d, want %d", got, wantGen)
	}
	if err := follower.Exec("n(3)."); err != nil {
		t.Fatalf("promoted leader refuses writes: %v", err)
	}
	if got := follower.Generation(); got != wantGen+1 {
		t.Fatalf("post-promotion write: generation %d, want %d", got, wantGen+1)
	}
	// Idempotent.
	if err := follower.Promote(); err != nil {
		t.Fatalf("second Promote: %v", err)
	}
}

func TestStalenessShedding(t *testing.T) {
	leader, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if err := leader.Exec("n(1)."); err != nil {
		t.Fatal(err)
	}
	addr, err := leader.ServeReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	follower, err := OpenFollower(addr, Config{MaxStaleness: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitCaughtUp(t, follower, leader.Generation())

	// Fresh: reads pass.
	if _, err := follower.Query("?- n(X)."); err != nil {
		t.Fatalf("fresh follower read: %v", err)
	}

	// Partition the receive side: heartbeats stop arriving, staleness
	// grows past the bound, reads are shed with ErrStale — typed,
	// never silently old.
	restore := faultinject.SetData(faultinject.SiteReplicaRecv, func([]byte) ([]byte, error) {
		return nil, fmt.Errorf("injected partition")
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := follower.Query("?- n(X).")
		if errors.Is(err, ErrStale) {
			break
		}
		if err != nil {
			restore()
			t.Fatalf("partitioned follower read: got %v, want ErrStale", err)
		}
		if time.Now().After(deadline) {
			restore()
			t.Fatal("follower never went stale under a partition")
		}
		time.Sleep(5 * time.Millisecond)
	}
	restore()

	// Healed: the follower reconnects, catches up, and serves again.
	deadline = time.Now().Add(10 * time.Second)
	for {
		_, err := follower.Query("?- n(X).")
		if err == nil {
			break
		}
		if !errors.Is(err, ErrStale) {
			t.Fatalf("healed follower read: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never recovered after the partition healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStalenessHonestDuringCatchUp pins the bounded-staleness
// contract through a backlog replay: after a partition, the records a
// follower streams to catch up carry old generations, and applying
// them must NOT refresh staleness — the view is still behind the
// leader. Reads stay ErrStale until the follower actually draws level
// with the generation the leader advertises on every frame.
func TestStalenessHonestDuringCatchUp(t *testing.T) {
	leader, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if err := leader.LoadFacts("n", [][]Term{{Int(0)}}); err != nil {
		t.Fatal(err)
	}
	addr, err := leader.ServeReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	follower, err := OpenFollower(addr, Config{MaxStaleness: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitCaughtUp(t, follower, leader.Generation())

	// Partition the follower's receive side and pile up a backlog.
	restore := faultinject.SetData(faultinject.SiteReplicaRecv, func([]byte) ([]byte, error) {
		return nil, fmt.Errorf("injected partition")
	})
	for i := 1; i <= 200; i++ {
		if err := leader.LoadFacts("n", [][]Term{{Int(int64(i))}}); err != nil {
			restore()
			t.Fatal(err)
		}
	}
	leaderGen := leader.Generation()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := follower.Query("?- n(X).")
		if errors.Is(err, ErrStale) {
			break
		}
		if err != nil {
			restore()
			t.Fatalf("partitioned follower read: got %v, want ErrStale", err)
		}
		if time.Now().After(deadline) {
			restore()
			t.Fatal("follower never went stale under a partition")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Heal, but lag every shipped frame so the catch-up window is wide
	// enough to observe. The backlog records each carry a generation
	// far below the leader's; a read served before the follower draws
	// level would be the silently-stale answer the bound promises to
	// shed.
	restoreLag := faultinject.Set(faultinject.SiteReplicaLag, func() error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	defer restoreLag()
	restore()

	deadline = time.Now().Add(30 * time.Second)
	for {
		_, err := follower.Query("?- n(X).")
		if err == nil {
			if got := follower.Generation(); got < leaderGen {
				t.Fatalf("read served at generation %d while still catching up to %d", got, leaderGen)
			}
			break
		}
		if !errors.Is(err, ErrStale) {
			t.Fatalf("catching-up follower read: got %v, want ErrStale", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up (at generation %d of %d)", follower.Generation(), leaderGen)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCorruptFrameNeverApplied(t *testing.T) {
	leader, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	addr, err := leader.ServeReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.LoadFacts("n", [][]Term{{Int(1)}}); err != nil {
		t.Fatal(err)
	}

	// Flip a bit in every shipped frame: the follower must detect the
	// CRC mismatch, drop the stream, and retry — the mangled record is
	// never applied. Clear the fault after a while and verify the
	// follower converges to the exact leader state.
	restore := faultinject.SetData(faultinject.SiteReplicaSend, func(b []byte) ([]byte, error) {
		if len(b) > 12 {
			mangled := append([]byte(nil), b...)
			mangled[12] ^= 0x40
			return mangled, nil
		}
		return b, nil
	})
	follower, err := OpenFollower(addr, Config{})
	if err != nil {
		restore()
		t.Fatal(err)
	}
	defer follower.Close()
	time.Sleep(100 * time.Millisecond)
	if got := follower.Generation(); got != 0 {
		restore()
		t.Fatalf("follower applied %d generation(s) from a corrupted stream", got)
	}
	restore()
	waitCaughtUp(t, follower, leader.Generation())
	if got, want := answers(t, follower, "?- n(X)."), answers(t, leader, "?- n(X)."); got != want {
		t.Fatalf("follower diverged after corruption healed:\nleader:\n%s\nfollower:\n%s", want, got)
	}
}

// A follower that has never completed a sync with its leader must not
// claim staleness 0 — "never synced" is maximally stale. With any
// staleness bound set, reads shed with ErrStale instead of serving an
// empty database as if it were fresh.
func TestFreshFollowerStalenessUnknown(t *testing.T) {
	// 127.0.0.1:1 is a dead address: the session dials and retries
	// forever, never reaching a sync point.
	follower, err := OpenFollower("127.0.0.1:1", Config{MaxStaleness: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if got := follower.Staleness(); got != replica.StalenessUnknown {
		t.Fatalf("fresh follower Staleness() = %v, want StalenessUnknown", got)
	}
	if _, err := follower.Query("?- p(X)."); !errors.Is(err, ErrStale) {
		t.Fatalf("fresh follower read under a 1h bound: err = %v, want ErrStale", err)
	}
}

// A fenced ex-leader re-opened from its own directory must come back
// read-only in its OLD epoch — it rejoins as history, never as a
// second writable leader. Only an explicit Promote (a fresh epoch)
// makes it writable again.
func TestFencedLeaderReopensReadOnly(t *testing.T) {
	dir := t.TempDir()
	leader, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Exec("p(a)."); err != nil {
		t.Fatal(err)
	}
	gen := leader.Generation()

	// A successor exists at epoch 7; this leader is deposed.
	if err := leader.inner.Fence(7); err != nil {
		t.Fatal(err)
	}
	if err := leader.Exec("p(b)."); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced leader Exec: err = %v, want ErrFenced", err)
	}
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Fenced() {
		t.Fatal("fencing did not survive the restart")
	}
	if got := re.Epoch(); got != 0 {
		t.Fatalf("reopened ex-leader Epoch() = %d, want its old epoch 0 (not the fencer's)", got)
	}
	if got := re.Generation(); got != gen {
		t.Fatalf("reopened ex-leader generation = %d, want %d", got, gen)
	}
	// Reads still serve its history; writes stay refused, typed.
	if got := answers(t, re, "?- p(X)."); got != "a|\n" {
		t.Fatalf("reopened ex-leader answers = %q", got)
	}
	if err := re.Exec("p(c)."); !errors.Is(err, ErrFenced) {
		t.Fatalf("reopened ex-leader Exec: err = %v, want ErrFenced", err)
	}
	if err := re.LoadFacts("p", [][]Term{{Sym("d")}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("reopened ex-leader LoadFacts: err = %v, want ErrFenced", err)
	}
	// The operator override: Promote mints a fresh epoch and clears
	// the fence durably. The minted epoch must be strictly past the
	// successor's epoch 7 — the highest epoch this node ever heard,
	// remembered across the restart — not past its own old epoch 0,
	// or the re-promoted ex-leader would be writable in an epoch the
	// live successor is (or was) also writing under.
	if err := re.Promote(); err != nil {
		t.Fatal(err)
	}
	if re.Fenced() || re.Epoch() != 8 {
		t.Fatalf("after Promote: fenced=%v epoch=%d, want writable at epoch 8 (past the fencer's 7)", re.Fenced(), re.Epoch())
	}
	if err := re.Exec("p(c)."); err != nil {
		t.Fatalf("promoted ex-leader Exec: %v", err)
	}
}

// The epoch a promotion mints is persisted beside the WAL and
// recovered on reopen: leadership history survives restarts.
func TestEpochPersistsAcrossRestart(t *testing.T) {
	leader, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if err := leader.Exec("p(a)."); err != nil {
		t.Fatal(err)
	}
	addr, err := leader.ServeReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fdir := t.TempDir()
	follower, err := OpenFollower(addr, Config{Dir: fdir})
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, follower, leader.Generation())
	if err := follower.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := follower.Epoch(); got != 1 {
		t.Fatalf("promoted follower Epoch() = %d, want 1", got)
	}
	gen := follower.Generation()
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDir(fdir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Epoch(); got != 1 {
		t.Fatalf("reopened promoted node Epoch() = %d, want 1", got)
	}
	if re.IsFollower() || re.Fenced() {
		t.Fatalf("reopened promoted node: follower=%v fenced=%v, want a writable leader", re.IsFollower(), re.Fenced())
	}
	if got := re.Generation(); got != gen {
		t.Fatalf("reopened promoted node generation = %d, want %d", got, gen)
	}
}

// The wire path of fencing: a follower that has adopted a higher
// epoch (a successor was promoted somewhere) reconnects to the old
// leader; the resume handshake carries the follower's epoch, and the
// deposed leader must fence itself rather than keep acknowledging
// writes no successor will ever hold.
func TestHandshakeFencesDeposedLeader(t *testing.T) {
	leader, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if err := leader.Exec("p(a)."); err != nil {
		t.Fatal(err)
	}
	addr, err := leader.ServeReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	follower, err := OpenFollower(addr, Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitCaughtUp(t, follower, leader.Generation())

	// The follower learns (as it would from a coordinator-run
	// promotion elsewhere) that epoch 3 exists, then reconnects.
	if err := follower.inner.AdoptEpoch(3); err != nil {
		t.Fatal(err)
	}
	if err := follower.retarget(addr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !leader.Fenced() {
		if time.Now().After(deadline) {
			t.Fatal("leader never fenced itself on a higher-epoch handshake")
		}
		time.Sleep(time.Millisecond)
	}
	if err := leader.Exec("p(b)."); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed leader Exec: err = %v, want ErrFenced", err)
	}
}

// Fencing must cut ESTABLISHED replication streams, not just refuse
// new handshakes: a leader deposed mid-stream may hold backlog past
// the successor's promotion point, and shipping it would push
// connected followers onto a dead branch. After Fence the stream must
// drop and every reconnect must be refused.
func TestFencedLeaderStopsServingEstablishedStreams(t *testing.T) {
	leader, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if err := leader.Exec("p(a)."); err != nil {
		t.Fatal(err)
	}
	addr, err := leader.ServeReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	follower, err := OpenFollower(addr, Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitCaughtUp(t, follower, leader.Generation())
	follower.replMu.Lock()
	sess := follower.repl
	follower.replMu.Unlock()
	if !sess.Connected() {
		t.Fatal("follower not connected after catching up")
	}

	// Depose the leader directly (as a coordinator that promoted a
	// successor elsewhere would). The follower itself has not heard
	// the higher epoch, so only the leader's own serve loop can end
	// the established stream.
	if err := leader.inner.Fence(3); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sess.Connected() {
		if time.Now().After(deadline) {
			t.Fatal("established stream survived fencing")
		}
		time.Sleep(time.Millisecond)
	}
	// Reconnect attempts are refused at the handshake (the session is
	// marked connected only after a successful echo), so the stream
	// must stay down.
	time.Sleep(50 * time.Millisecond)
	if sess.Connected() {
		t.Fatal("fenced leader accepted a replication reconnect")
	}
}

// A corrupt epoch record refuses to open, typed: leadership state is
// fencing evidence, and recovery never guesses at it.
func TestEpochFileCorrupt(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.inner.Fence(2); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "epoch"), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 9); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenDir(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over a corrupt epoch record: err = %v, want ErrCorrupt", err)
	}
}
