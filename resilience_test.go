package chainsplit

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"chainsplit/internal/faultinject"
)

// cyclicTravelSrc is the paper's travel recursion over a cyclic flight
// graph (a ⇄ b): statically accepted (every literal is schedulable)
// but divergent at runtime — routes grow without bound — so it is the
// canonical victim for deadline/budget/cancellation tests.
const cyclicTravelSrc = `
travel(L, D, DT, A, AT, F) :- flight(Fno, D, DT, A, AT, F), cons(Fno, [], L).
travel(L, D, DT, A, AT, F) :-
    flight(Fno, D, DT, A1, AT1, F1),
    travel(L1, A1, DT1, A, AT, F2),
    DT1 > AT1,
    plus(F1, F2, F),
    cons(Fno, L1, L).
flight(1, a, 100, b, 50, 50).
flight(2, b, 100, a, 50, 60).
flight(3, a, 100, c, 50, 70).
`

const cyclicTravelQuery = "?- travel(L, a, DT, A, AT, F)."

// forcedStrategies lists every forced evaluation strategy with the
// fault-injection site inside the engine that runs it.
var forcedStrategies = []struct {
	name string
	s    Strategy
	site string
}{
	{"seminaive", StrategySeminaive, faultinject.SiteSeminaiveIterate},
	{"magic", StrategyMagic, faultinject.SiteMagicRewrite},
	{"magic-follow", StrategyMagicFollow, faultinject.SiteMagicRewrite},
	{"magic-split", StrategyMagicSplit, faultinject.SiteMagicRewrite},
	{"buffered", StrategyBuffered, faultinject.SiteCountingLevel},
	{"topdown", StrategyTopDown, faultinject.SiteTopdownStep},
}

func openCyclicTravel(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, cyclicTravelSrc)
	return db
}

// TestTimeoutAllStrategies is the headline acceptance check: a
// divergent query under WithTimeout(50ms) must come back as
// ErrDeadline well under a second for every forced strategy.
func TestTimeoutAllStrategies(t *testing.T) {
	for _, tc := range forcedStrategies {
		t.Run(tc.name, func(t *testing.T) {
			db := openCyclicTravel(t)
			start := time.Now()
			_, err := db.Query(cyclicTravelQuery,
				WithStrategy(tc.s), WithTimeout(50*time.Millisecond))
			elapsed := time.Since(start)
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("err = %v, want ErrDeadline", err)
			}
			if elapsed > time.Second {
				t.Errorf("deadline enforced after %v, want well under 1s", elapsed)
			}
			var ee *EvalError
			if !errors.As(err, &ee) {
				t.Fatalf("err %v does not carry an *EvalError", err)
			}
			if ee.Strategy == "" {
				t.Errorf("EvalError.Strategy empty, want the failing strategy")
			}
		})
	}
}

// TestCancelAllStrategies: a context canceled before the call returns
// ErrCanceled immediately, for every strategy.
func TestCancelAllStrategies(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range forcedStrategies {
		t.Run(tc.name, func(t *testing.T) {
			db := openCyclicTravel(t)
			_, err := db.QueryCtx(ctx, cyclicTravelQuery, WithStrategy(tc.s))
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if errors.Is(err, ErrDeadline) {
				t.Error("cancellation must not classify as deadline")
			}
		})
	}
}

// TestCancelMidEvaluation cancels a running divergent query from
// another goroutine; evaluation must stop soon after.
func TestCancelMidEvaluation(t *testing.T) {
	db := openCyclicTravel(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := db.QueryCtx(ctx, cyclicTravelQuery, WithStrategy(StrategySeminaive))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancel honored after %v, want well under 1s", elapsed)
	}
}

// TestBudgetTyped: tight tuple/step/answer budgets classify as
// ErrBudget under the public taxonomy for every strategy.
func TestBudgetTyped(t *testing.T) {
	for _, tc := range forcedStrategies {
		t.Run(tc.name, func(t *testing.T) {
			db := openCyclicTravel(t)
			_, err := db.Query(cyclicTravelQuery,
				WithStrategy(tc.s), WithBudgets(500, 500, 500))
			if !errors.Is(err, ErrBudget) {
				t.Fatalf("err = %v, want ErrBudget", err)
			}
			if errors.Is(err, ErrDeadline) || errors.Is(err, ErrCanceled) {
				t.Error("budget exhaustion must not classify as cancellation")
			}
		})
	}
}

// TestPanicContainedAllStrategies injects a panic inside each engine
// and checks it surfaces as a structured *EvalError matching ErrPanic
// — never as a crashed test binary.
func TestPanicContainedAllStrategies(t *testing.T) {
	for _, tc := range forcedStrategies {
		t.Run(tc.name, func(t *testing.T) {
			db := openCyclicTravel(t)
			restore := faultinject.Set(tc.site, func() error {
				panic("injected engine panic")
			})
			defer restore()
			_, err := db.Query(cyclicTravelQuery,
				WithStrategy(tc.s), WithTimeout(5*time.Second))
			if !errors.Is(err, ErrPanic) {
				t.Fatalf("err = %v, want ErrPanic", err)
			}
			var ee *EvalError
			if !errors.As(err, &ee) {
				t.Fatalf("err %v does not carry an *EvalError", err)
			}
			if ee.PanicVal != "injected engine panic" {
				t.Errorf("PanicVal = %v, want the injected value", ee.PanicVal)
			}
			if ee.Stack == "" {
				t.Error("contained panic lost its stack trace")
			}
		})
	}
}

// finiteTCSrc is a terminating transitive closure used by the
// fallback tests: the answers are known, so a fallback re-run can be
// checked for correctness, not just for not-erroring.
const finiteTCSrc = `
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
e(n0, n1). e(n1, n2). e(n2, n3).
`

// TestAutoFallbackOnChainCompileError: an injected chain-compilation
// failure under StrategyAuto must degrade to plain semi-naive, return
// the correct answers, and record the fallback in Metrics.
func TestAutoFallbackOnChainCompileError(t *testing.T) {
	db := Open()
	mustExec(t, db, finiteTCSrc)
	restore := faultinject.Set(faultinject.SiteChainCompile, func() error {
		return errors.New("injected chain-compile failure")
	})
	defer restore()
	res, err := db.Query("?- tc(n0, Y).")
	if err != nil {
		t.Fatalf("StrategyAuto did not fall back: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("fallback answers = %d, want 3 (n1, n2, n3)", len(res.Rows))
	}
	if res.Metrics.FallbackFrom == "" {
		t.Error("Metrics.FallbackFrom not set after fallback")
	}
	if !strings.Contains(res.Metrics.FallbackReason, "injected chain-compile failure") {
		t.Errorf("Metrics.FallbackReason = %q, want the injected cause", res.Metrics.FallbackReason)
	}
}

// TestAutoFallbackOnEnginePanic: a panic inside the chosen engine
// under StrategyAuto is contained AND recovered from by re-running
// semi-naive (the panic site is not on the semi-naive path).
func TestAutoFallbackOnEnginePanic(t *testing.T) {
	db := Open()
	mustExec(t, db, finiteTCSrc)
	restore := faultinject.Set(faultinject.SiteMagicRewrite, func() error {
		panic("injected rewrite panic")
	})
	defer restore()
	res, err := db.Query("?- tc(n0, Y).")
	if err != nil {
		t.Fatalf("StrategyAuto did not fall back from the panic: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("fallback answers = %d, want 3", len(res.Rows))
	}
	if res.Metrics.FallbackFrom == "" {
		t.Error("Metrics.FallbackFrom not set after panic fallback")
	}
}

// TestForcedStrategyDoesNotFallBack: degradation is an Auto-only
// behavior — a forced strategy must surface its own failure.
func TestForcedStrategyDoesNotFallBack(t *testing.T) {
	db := Open()
	mustExec(t, db, finiteTCSrc)
	restore := faultinject.Set(faultinject.SiteMagicRewrite, func() error {
		return errors.New("injected rewrite failure")
	})
	defer restore()
	_, err := db.Query("?- tc(n0, Y).", WithStrategy(StrategyMagic))
	if err == nil {
		t.Fatal("forced StrategyMagic silently fell back; want the injected error")
	}
	if !strings.Contains(err.Error(), "injected rewrite failure") {
		t.Errorf("err = %v, want the injected cause", err)
	}
}

// TestNoFallbackOnBudgetOrDeadline: resource exhaustion is the
// caller's signal, not a strategy defect — Auto must not burn a second
// budget re-running semi-naive.
func TestNoFallbackOnBudgetOrDeadline(t *testing.T) {
	db := openCyclicTravel(t)
	_, err := db.Query(cyclicTravelQuery, WithTimeout(50*time.Millisecond))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline (no fallback)", err)
	}
	_, err = db.Query(cyclicTravelQuery, WithBudgets(500, 500, 500))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget (no fallback)", err)
	}
}

// TestTimeoutComposesWithContext: the earlier of the context deadline
// and WithTimeout wins.
func TestTimeoutComposesWithContext(t *testing.T) {
	db := openCyclicTravel(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := db.QueryCtx(ctx, cyclicTravelQuery, WithTimeout(time.Hour))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline from the context", err)
	}
}

// TestTimeoutLeavesFastQueriesAlone: a generous deadline must not
// perturb a terminating query.
func TestTimeoutLeavesFastQueriesAlone(t *testing.T) {
	db := Open()
	mustExec(t, db, finiteTCSrc)
	res, err := db.Query("?- tc(n0, Y).", WithTimeout(10*time.Second))
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("res = %v err = %v, want 3 answers", res, err)
	}
	if res.Metrics.FallbackFrom != "" {
		t.Errorf("spurious fallback recorded: %q", res.Metrics.FallbackFrom)
	}
}

// TestTaxonomyDisjoint: each failure matches exactly its own sentinel.
func TestTaxonomyDisjoint(t *testing.T) {
	sentinels := map[string]error{
		"canceled": ErrCanceled, "deadline": ErrDeadline, "budget": ErrBudget,
		"unsafe": ErrUnsafe, "plan": ErrPlan, "panic": ErrPanic,
	}
	db := Open()
	mustExec(t, db, "append([], L, L).\nappend([X|L1], L2, [X|L3]) :- append(L1, L2, L3).")
	_, err := db.Query("?- append(U, [3], W).")
	for name, s := range sentinels {
		if got, want := errors.Is(err, s), name == "unsafe"; got != want {
			t.Errorf("errors.Is(staticallyInfinite, %s) = %v, want %v", name, got, want)
		}
	}
	if !errors.Is(err, ErrNotFinitelyEvaluable) {
		t.Error("static rejection lost its legacy ErrNotFinitelyEvaluable identity")
	}
}

// TestUnrelatedDivergentRecursionDoesNotHang: bottom-up evaluation of
// a finite goal must stay inside the goal's dependency cone. Before
// the cone restriction, the semi-naive engine evaluated the whole
// program to fixpoint, so this query — which never mentions travel —
// diverged with the cyclic flight graph. (Found by the chaos soak.)
func TestUnrelatedDivergentRecursionDoesNotHang(t *testing.T) {
	db := Open()
	mustExec(t, db, finiteTCSrc+cyclicTravelSrc)
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		res, err = db.Query("?- tc(n0, Y).", WithStrategy(StrategySeminaive))
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("seminaive query evaluated the unrelated divergent recursion")
	}
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("rows=%d err=%v, want 3 answers", len(res.Rows), err)
	}
}
