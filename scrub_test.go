package chainsplit

// The online scrubber: the offline Fsck's checks against a store a
// live writer may still be appending to, plus the publish-after-log
// invariant, wired into the serving layer through Config.ScrubEvery
// (background passes + self-quarantine) and the one-shot Scrub.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"chainsplit/internal/scrub"
	"chainsplit/internal/wal"
)

// buildScrubStore writes a small durable store and returns its dir and
// final generation.
func buildScrubStore(t *testing.T, snapshotEvery int) (string, uint64) {
	t.Helper()
	dir := t.TempDir()
	db, err := OpenWith(Config{Dir: dir, SnapshotEvery: snapshotEvery})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := db.Exec(fmt.Sprintf("n(%d).", i)); err != nil {
			t.Fatal(err)
		}
	}
	gen := db.Generation()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, gen
}

func TestScrubPassCleanStore(t *testing.T) {
	dir, gen := buildScrubStore(t, -1)
	s := scrub.New(scrub.Config{Dir: dir, Published: func() uint64 { return gen }})
	rep, err := s.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean store failed scrub:\n%s", rep.String())
	}
	if rep.Records == 0 || rep.LastSeq != gen {
		t.Fatalf("pass saw %d records, last generation %d (want %d)", rep.Records, rep.LastSeq, gen)
	}
	if s.LastReport() != rep {
		t.Fatal("LastReport does not return the latest pass")
	}
	if scrub.Corruption(rep) != nil {
		t.Fatal("Corruption of a clean report is non-nil")
	}
}

func TestScrubPassDetectsFlippedFrame(t *testing.T) {
	dir, _ := buildScrubStore(t, -1)
	seg := onlyMatch(t, dir, "wal-*.log")
	offsets, _, err := wal.RecordOffsets(seg)
	if err != nil || len(offsets) < 2 {
		t.Fatalf("RecordOffsets: %v %v", offsets, err)
	}
	flipFileByte(t, seg, offsets[0]+12)

	var reported *wal.Report
	s := scrub.New(scrub.Config{Dir: dir, OnCorrupt: func(rep *wal.Report) { reported = rep }})
	rep, err := s.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("flipped frame passed the scrub")
	}
	if reported != rep {
		t.Fatal("OnCorrupt did not receive the failed report")
	}
	if cerr := scrub.Corruption(rep); !errors.Is(cerr, ErrCorrupt) {
		t.Fatalf("Corruption() outside the taxonomy: %v", cerr)
	}
}

func TestScrubEmptyDirIsCleanNoop(t *testing.T) {
	// A background scrubber may start before the first write lands; an
	// empty (or missing) directory is "nothing to verify yet".
	for _, dir := range []string{t.TempDir(), filepath.Join(t.TempDir(), "never-created")} {
		rep, err := scrub.New(scrub.Config{Dir: dir}).Pass()
		if err != nil || !rep.OK() {
			t.Fatalf("empty dir %s: err=%v report:\n%s", dir, err, rep.String())
		}
	}
	// The one-shot Scrub, by contrast, is a usage check like Fsck: a
	// store that does not exist is ErrNoStore, not "clean".
	if _, _, err := Scrub(t.TempDir()); !errors.Is(err, ErrNoStore) {
		t.Fatalf("one-shot Scrub of an empty dir: %v, want ErrNoStore", err)
	}
}

func TestScrubPublishedAheadOfDurableIsCorruption(t *testing.T) {
	dir, gen := buildScrubStore(t, -1)
	s := scrub.New(scrub.Config{Dir: dir, Published: func() uint64 { return gen + 3 }})
	rep, err := s.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("pass accepted durable state at %d behind published generation %d", rep.LastSeq, gen+3)
	}
}

func TestScrubOnlineToleratesInFlightAppend(t *testing.T) {
	dir, _ := buildScrubStore(t, -1)
	// Simulate an append torn mid-write: a frame header claiming more
	// bytes than follow. The online pass must read it as "not yet"; the
	// strict offline Fsck must flag the same bytes.
	seg := onlyMatch(t, dir, "wal-*.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 1, 0, 0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := scrub.New(scrub.Config{Dir: dir}).Pass()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("online pass flagged an in-flight append:\n%s", rep.String())
	}
	if report, ok, err := Fsck(dir); err != nil || ok {
		t.Fatalf("offline fsck excused a torn tail: ok=%v err=%v\n%s", ok, err, report)
	}
}

func TestScrubBackgroundPassesRun(t *testing.T) {
	dir, _ := buildScrubStore(t, -1)
	s := scrub.New(scrub.Config{Dir: dir, Every: time.Millisecond})
	s.Start()
	defer s.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for s.LastReport() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber never completed a pass")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop() // idempotent with the deferred Stop
}

func TestOneShotScrub(t *testing.T) {
	dir, _ := buildScrubStore(t, -1)
	report, ok, err := Scrub(dir)
	if err != nil || !ok {
		t.Fatalf("clean store: ok=%v err=%v\n%s", ok, err, report)
	}
	seg := onlyMatch(t, dir, "wal-*.log")
	offsets, _, err := wal.RecordOffsets(seg)
	if err != nil || len(offsets) < 2 {
		t.Fatalf("RecordOffsets: %v %v", offsets, err)
	}
	flipFileByte(t, seg, offsets[0]+12)
	report, ok, err = Scrub(dir)
	if err != nil || ok {
		t.Fatalf("corrupt store: ok=%v err=%v", ok, err)
	}
	if report == "" {
		t.Fatal("corrupt store produced an empty report")
	}
}

// TestScrubEveryQuarantinesStandalone is the serving-layer wiring end
// to end on a standalone database: Config.ScrubEvery detects on-disk
// corruption under a live database and quarantines it — reads shed
// with ErrQuarantined instead of serving from a store that can no
// longer be vouched for. Standalone there is no leader to reseed from,
// so quarantine is terminal until reopen.
func TestScrubEveryQuarantinesStandalone(t *testing.T) {
	checkLeaks := leakGuard(t)
	dir := t.TempDir()
	db, err := OpenWith(Config{Dir: dir, SnapshotEvery: -1, ScrubEvery: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 4; i++ {
		if err := db.Exec(fmt.Sprintf("n(%d).", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Query("?- n(X)."); err != nil {
		t.Fatalf("pre-corruption read: %v", err)
	}

	seg := onlyMatch(t, dir, "wal-*.log")
	offsets, _, err := wal.RecordOffsets(seg)
	if err != nil || len(offsets) < 2 {
		t.Fatalf("RecordOffsets: %v %v", offsets, err)
	}
	flipFileByte(t, seg, offsets[0]+12)

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := db.Query("?- n(X).")
		if errors.Is(err, ErrQuarantined) {
			break
		}
		if err != nil {
			t.Fatalf("read failed outside the taxonomy: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("scrubber never quarantined the corrupted store")
		}
		time.Sleep(time.Millisecond)
	}
	if report, ok := db.ScrubReport(); ok || report == "" {
		t.Fatalf("ScrubReport after quarantine: ok=%v report=%q", ok, report)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	checkLeaks()
}
