package chainsplit

// Chaos soak: a randomized, seeded stress test that hammers one live
// DB with everything at once — parallel queries across all six
// strategies, concurrent fact loads and rule loads, cancellations,
// tight deadlines, admission pressure, and fault injection (errors,
// panics, stalls) flipping on and off at every engine site. The
// invariants it enforces:
//
//   - every outcome is either a correct result or an error matching
//     one sentinel of the taxonomy — never a torn read, a garbage
//     answer, or an unclassified error;
//   - paired fact batches are seen whole (snapshot isolation);
//   - the process neither deadlocks nor leaks goroutines.
//
// The seed and duration come from CHAINSPLIT_SOAK_SEED and
// CHAINSPLIT_SOAK_DURATION so a failing run can be replayed and CI
// can run longer soaks; defaults keep it a normal-length test.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chainsplit/internal/faultinject"
)

const soakSrc = cyclicTravelSrc + `
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
e(n0, n1). e(n1, n2). e(n2, n3).

both(X) :- pair(X, 1), pair(X, 2).
pair(0, 1). pair(0, 2).
`

// soakOutcomes tallies what happened, so the test can both log the
// mix and assert the soak actually exercised the paths it claims to.
type soakOutcomes struct {
	ok, canceled, deadline, budget, overloaded, panicked, unsafe, plan, injected atomic.Int64
}

func (o *soakOutcomes) record(t *testing.T, err error) {
	switch {
	case err == nil:
		o.ok.Add(1)
	case errors.Is(err, ErrCanceled):
		o.canceled.Add(1)
	case errors.Is(err, ErrDeadline):
		o.deadline.Add(1)
	case errors.Is(err, ErrBudget):
		o.budget.Add(1)
	case errors.Is(err, ErrOverloaded):
		o.overloaded.Add(1)
	case errors.Is(err, ErrPanic):
		o.panicked.Add(1)
	case errors.Is(err, ErrUnsafe):
		o.unsafe.Add(1)
	case errors.Is(err, ErrPlan):
		o.plan.Add(1)
	default:
		// Injected engine errors surface with their own cause (a
		// forced strategy reports the fault as-is) but must still
		// carry the structured *EvalError envelope.
		var ee *EvalError
		if !errors.As(err, &ee) {
			t.Errorf("untyped error escaped the API: %v", err)
			return
		}
		o.injected.Add(1)
	}
}

func (o *soakOutcomes) String() string {
	return fmt.Sprintf("ok=%d canceled=%d deadline=%d budget=%d overloaded=%d panic=%d unsafe=%d plan=%d injected=%d",
		o.ok.Load(), o.canceled.Load(), o.deadline.Load(), o.budget.Load(),
		o.overloaded.Load(), o.panicked.Load(), o.unsafe.Load(), o.plan.Load(),
		o.injected.Load())
}

func (o *soakOutcomes) total() int64 {
	return o.ok.Load() + o.canceled.Load() + o.deadline.Load() + o.budget.Load() +
		o.overloaded.Load() + o.panicked.Load() + o.unsafe.Load() + o.plan.Load() +
		o.injected.Load()
}

func soakEnvInt64(name string, def int64) int64 {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	seed := soakEnvInt64("CHAINSPLIT_SOAK_SEED", time.Now().UnixNano())
	duration := time.Duration(soakEnvInt64("CHAINSPLIT_SOAK_DURATION",
		int64(2*time.Second)))
	t.Logf("soak: seed=%d duration=%v (override with CHAINSPLIT_SOAK_SEED / CHAINSPLIT_SOAK_DURATION)", seed, duration)
	defer faultinject.Reset()

	checkLeaks := leakGuard(t)
	// Capacity below the worker count and a tiny queue so admission
	// pressure and shedding actually happen during the soak.
	db, err := OpenWith(Config{MaxConcurrent: 6, MaxQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, soakSrc)

	var (
		out     soakOutcomes
		batches atomic.Int64 // pair batches fully loaded
		stop    = make(chan struct{})
		wg      sync.WaitGroup
	)
	strategies := []Strategy{
		StrategyAuto, StrategyMagic, StrategyMagicFollow,
		StrategyMagicSplit, StrategyBuffered, StrategySeminaive, StrategyTopDown,
	}

	// Query workers: mix of finite queries (answers checked), torn-read
	// probes, and divergent queries under tight deadlines, each under a
	// randomly forced strategy, sometimes with retry.
	const queryWorkers = 10
	for w := 0; w < queryWorkers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// 1 << {0,1,2}: a third of queries run serial, the rest
				// exercise the parallel fixpoint rounds (2 or 4 workers).
				opts := []Option{
					WithStrategy(strategies[rng.Intn(len(strategies))]),
					WithWorkers(1 << rng.Intn(3)),
				}
				if rng.Intn(3) == 0 {
					opts = append(opts, WithRetry(RetryPolicy{
						MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: 0.5,
						Seed: rng.Int63(),
					}))
				}
				switch rng.Intn(4) {
				case 0: // finite recursion; answers verified when it succeeds
					res, err := db.Query("?- tc(n0, Y).", opts...)
					out.record(t, err)
					if err == nil && len(res.Rows) < 3 {
						t.Errorf("tc answers = %d, want >= 3", len(res.Rows))
					}
				case 1: // torn-read probe: pair cardinality must be even
					res, err := db.Query("?- pair(X, Y).", opts...)
					out.record(t, err)
					if err == nil && len(res.Rows)%2 != 0 {
						t.Errorf("torn read: %d pair tuples", len(res.Rows))
					}
				case 2: // divergent query under a tight deadline + budget
					// The budget is the hard stop: deadline checks fire
					// at level boundaries, and on the cyclic graph an
					// unbudgeted level grows exponentially past them.
					opts = append(opts,
						WithTimeout(time.Duration(1+rng.Intn(20))*time.Millisecond),
						WithBudgets(2000, 2000, 2000))
					_, err := db.Query(cyclicTravelQuery, opts...)
					out.record(t, err)
				case 3: // cancellation mid-flight
					ctx, cancel := context.WithCancel(context.Background())
					delay := time.Duration(rng.Intn(5)) * time.Millisecond
					go func() {
						time.Sleep(delay)
						cancel()
					}()
					_, err := db.QueryCtx(ctx, cyclicTravelQuery, append(opts,
						WithTimeout(100*time.Millisecond),
						WithBudgets(2000, 2000, 2000))...)
					out.record(t, err)
					cancel()
				}
			}
		}()
	}

	// Fact loader: pair batches that must be visible atomically.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := int64(1); ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			err := db.LoadFacts("pair", [][]Term{
				{Int(k), Int(1)},
				{Int(k), Int(2)},
			})
			if err != nil {
				t.Errorf("LoadFacts: %v", err)
				return
			}
			batches.Store(k)
			time.Sleep(time.Millisecond)
		}
	}()

	// Rule loader: periodically loads fresh rules, forcing analysis
	// rebuilds on a new generation while queries run on old ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			err := db.Exec(fmt.Sprintf("aux%d(X) :- e(X, Y).", i))
			if err != nil {
				t.Errorf("Exec: %v", err)
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Chaos agent: flips random faults on and off at every engine site.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		sites := []string{
			faultinject.SiteChainCompile, faultinject.SiteMagicRewrite,
			faultinject.SiteSeminaiveIterate, faultinject.SiteCountingLevel,
			faultinject.SiteTopdownStep,
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			site := sites[rng.Intn(len(sites))]
			switch rng.Intn(4) {
			case 0:
				faultinject.Set(site, func() error {
					return errors.New("soak: injected error")
				})
			case 1:
				faultinject.Set(site, func() error {
					panic("soak: injected panic")
				})
			case 2:
				stall := time.Duration(1+rng.Intn(3)) * time.Millisecond
				faultinject.Set(site, func() error {
					time.Sleep(stall)
					return nil
				})
			case 3:
				faultinject.Clear(site)
			}
			time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	faultinject.Reset()
	t.Logf("soak outcomes: %s; %d pair batches, final generation %d, stats %+v",
		out.String(), batches.Load(), db.Generation(), db.Stats())

	// The soak must have actually exercised success and failure paths.
	if out.ok.Load() == 0 {
		t.Error("no query succeeded during the soak")
	}
	if total := out.total(); total < 50 {
		t.Errorf("only %d queries completed; soak too weak", total)
	}

	// Post-soak correctness: with faults cleared, the final generation
	// answers exactly.
	res, err := db.Query("?- both(X).")
	if err != nil {
		t.Fatalf("post-soak query: %v", err)
	}
	if want := batches.Load() + 1; int64(len(res.Rows)) != want {
		t.Errorf("post-soak both = %d, want %d (every batch whole)", len(res.Rows), want)
	}

	// No leaked goroutines: the worker pool is gone and no query
	// goroutine is stuck on a lock or channel.
	checkLeaks()
}

// TestDurableChaosSoak is the durability counterpart of TestChaosSoak:
// seeded cycles of open → mutate under concurrent readers → crash (or
// close) → reopen. Crashes come in three flavors — clean Close, hard
// abandonment mid-flight, and a torn final append injected at the
// wal.append site — and cycles alternate between log-only and
// snapshot-compacted cadences. The invariant held at every reopen: the
// recovered generation is exactly the last durable one (never past it,
// never reset), and the fact count matches the generation bit-exactly:
// every generation after the first added one mark, so marks == gen-1.
func TestDurableChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	seed := soakEnvInt64("CHAINSPLIT_SOAK_SEED", time.Now().UnixNano())
	duration := time.Duration(soakEnvInt64("CHAINSPLIT_SOAK_DURATION",
		int64(1500*time.Millisecond)))
	t.Logf("durable soak: seed=%d duration=%v", seed, duration)
	defer faultinject.Reset()

	dir := t.TempDir()
	rng := rand.New(rand.NewSource(seed ^ 0xd00b1e))
	deadline := time.Now().Add(duration)
	strategies := []Strategy{
		StrategyAuto, StrategyMagic, StrategyMagicFollow,
		StrategyMagicSplit, StrategyBuffered, StrategySeminaive, StrategyTopDown,
	}

	nextMark := int64(0) // never reused, even when a torn write loses one
	prevGen := uint64(0)
	cycles, crashes, torn := 0, 0, 0
	for cycle := 0; cycle == 0 || time.Now().Before(deadline); cycle++ {
		cycles++
		every := -1 // log-only on even cycles, compacted on odd
		if cycle%2 == 1 {
			every = 4
		}
		db, err := OpenWith(Config{Dir: dir, SnapshotEvery: every})
		if err != nil {
			t.Fatalf("cycle %d: reopen: %v", cycle, err)
		}
		gen := db.Generation()
		if gen < prevGen {
			t.Fatalf("cycle %d: generation went backwards: %d after %d", cycle, gen, prevGen)
		}
		if cycle == 0 {
			mustExec(t, db, "tc(X, Y) :- e(X, Y).\ntc(X, Y) :- e(X, Z), tc(Z, Y).\ne(n0, n1). e(n1, n2). e(n2, n3).")
		} else {
			// Recovered state answers exactly: one mark per generation
			// after the rules generation.
			res, err := db.Query("?- m(K).")
			if err != nil {
				t.Fatalf("cycle %d: recovered mark query: %v", cycle, err)
			}
			if uint64(len(res.Rows)) != gen-1 {
				t.Fatalf("cycle %d: %d marks at generation %d, want %d", cycle, len(res.Rows), gen, gen-1)
			}
		}

		// Concurrent readers under random strategies while the writer
		// mutates: snapshot isolation means they must never error and
		// never see a partial graph.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed + int64(cycle*31+w)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					res, err := db.Query("?- tc(n0, Y).", WithStrategy(strategies[r.Intn(len(strategies))]))
					if err != nil {
						t.Errorf("reader: %v", err)
						return
					}
					if len(res.Rows) < 3 {
						t.Errorf("reader saw %d tc answers, want >= 3", len(res.Rows))
						return
					}
				}
			}()
		}

		// Mutation burst, sometimes under a lying fsync (the write
		// still lands; the lie exercises the skip path under load).
		if rng.Intn(3) == 0 {
			faultinject.Set(faultinject.SiteWALSync, func() error { return faultinject.ErrSkipOp })
		}
		for i, n := 0, 3+rng.Intn(6); i < n; i++ {
			nextMark++
			if err := db.LoadFacts("m", [][]Term{{Int(nextMark)}}); err != nil {
				t.Fatalf("cycle %d: LoadFacts: %v", cycle, err)
			}
			if rng.Intn(5) == 0 {
				if err := db.Checkpoint(); err != nil {
					t.Fatalf("cycle %d: checkpoint: %v", cycle, err)
				}
			}
		}
		faultinject.Clear(faultinject.SiteWALSync)
		close(stop)
		wg.Wait()
		prevGen = db.Generation()

		switch mode := rng.Intn(3); {
		case mode == 0:
			if err := db.Close(); err != nil {
				t.Fatalf("cycle %d: close: %v", cycle, err)
			}
		case mode == 2 && every == -1:
			// Crash mid-append: the frame is torn at a random point but
			// reported as written. Recovery must drop it — exactly the
			// pre-tear generation comes back.
			torn++
			restore := faultinject.SetData(faultinject.SiteWALAppend, func(b []byte) ([]byte, error) {
				return b[:rng.Intn(len(b))], nil
			})
			nextMark++ // this mark is lost forever
			if err := db.LoadFacts("m", [][]Term{{Int(nextMark)}}); err != nil {
				t.Fatalf("cycle %d: torn LoadFacts: %v", cycle, err)
			}
			restore()
			crashes++
		default:
			crashes++ // hard crash: abandon the handle without Close
		}
	}

	db, err := OpenWith(Config{Dir: dir})
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	defer db.Close()
	gen := db.Generation()
	if gen < prevGen {
		t.Fatalf("final generation %d went backwards from %d", gen, prevGen)
	}
	res, err := db.Query("?- m(K).")
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(res.Rows)) != gen-1 {
		t.Fatalf("final: %d marks at generation %d, want %d", len(res.Rows), gen, gen-1)
	}
	report, ok, err := Fsck(dir)
	if err != nil || !ok {
		t.Fatalf("post-soak fsck: ok=%v err=%v\n%s", ok, err, report)
	}
	t.Logf("durable soak: %d cycles (%d crashes, %d torn appends), final generation %d, %d marks",
		cycles, crashes, torn, gen, len(res.Rows))
}
